#include "common/prof.h"

#include <cxxabi.h>
#include <dlfcn.h>
#include <pthread.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>

#include "common/log.h"

// glibc spells the SIGEV_THREAD_ID target field through a union; musl
// exposes it directly. Normalize to the musl spelling.
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif
#ifndef SIGEV_THREAD_ID
#define SIGEV_THREAD_ID 4
#endif

namespace prism::prof {

namespace detail {

std::atomic<bool> g_lock_prof{false};

}  // namespace detail

namespace {

// ---------------------------------------------------------------------
// Per-thread sampler state
// ---------------------------------------------------------------------

/**
 * One slot per dense ThreadId. `ktid` is the live kernel tid (-1 =
 * no thread currently owns the id); `ring` is created on first arming
 * and never freed (an adopting thread inherits it). `stack_lo/hi` are
 * written by the owning thread before `ktid` publishes, and only read
 * by that thread's own signal handler, so plain fields suffice.
 */
struct ThreadSlot {
    std::atomic<int> ktid{-1};
    std::atomic<SampleRing *> ring{nullptr};
    std::atomic<bool> armed{false};
    timer_t timer{};
    uintptr_t stack_lo = 0;
    uintptr_t stack_hi = 0;
};

ThreadSlot g_slots[ThreadId::kMaxThreads];

/** Guards arming/disarming and slot bookkeeping (never the handler). */
std::mutex g_prof_mu;

std::atomic<bool> g_profiling{false};
std::atomic<int> g_hz{0};
size_t g_ring_capacity = 2048;

/** Sum of ring heads at the last stop(), for dropped accounting. */
std::atomic<uint64_t> g_timer_failures{0};

/** Linux per-thread CPU clock for an arbitrary kernel tid (the same
 *  encoding pthread_getcpuclockid uses): bits 0-2 = clock type
 *  (CPUCLOCK_SCHED | CPUCLOCK_PERTHREAD_FLAG = 6), rest = ~tid. */
clockid_t
threadCpuClock(int ktid)
{
    return static_cast<clockid_t>(
        (~static_cast<unsigned int>(ktid) << 3) | 6u);
}

// ---------------------------------------------------------------------
// Signal handler: frame-pointer unwind into the thread's ring
// ---------------------------------------------------------------------

/**
 * Walk the frame-pointer chain starting from the interrupted context.
 * Every dereference is bounds-checked against the thread's stack, so
 * a broken chain (leaf frames of FP-less library code) terminates the
 * walk instead of faulting. Sanitizers must not instrument this: the
 * loads are deliberately outside their shadow-tracked world.
 */
__attribute__((no_sanitize("address", "thread", "undefined")))
uint32_t
unwindFromContext(void *ucv, uint64_t *out, uint32_t max, uintptr_t lo,
                  uintptr_t hi)
{
    if (max == 0)
        return 0;
    auto *uc = static_cast<ucontext_t *>(ucv);
    uintptr_t pc = 0;
    uintptr_t fp = 0;
#if defined(__x86_64__)
    pc = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
    fp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
#elif defined(__aarch64__)
    pc = static_cast<uintptr_t>(uc->uc_mcontext.pc);
    fp = static_cast<uintptr_t>(uc->uc_mcontext.regs[29]);
#else
    (void)uc;
#endif
    if (pc == 0)
        return 0;
    out[0] = pc;
    uint32_t n = 1;
    // Frame layout (x86_64 and aarch64 alike with frame pointers):
    // [fp] = caller's fp, [fp + 8] = return address. The chain must
    // stay word-aligned, inside the stack, and strictly grow upward.
    while (n < max) {
        if (fp < lo || fp + 2 * sizeof(uintptr_t) > hi ||
            (fp & (sizeof(uintptr_t) - 1)) != 0)
            break;
        const uintptr_t next_fp =
            *reinterpret_cast<const uintptr_t *>(fp);
        const uintptr_t ret =
            *reinterpret_cast<const uintptr_t *>(fp + sizeof(uintptr_t));
        if (ret < 4096)
            break;
        out[n++] = ret;
        if (next_fp <= fp)
            break;
        fp = next_fp;
    }
    return n;
}

void
samplerHandler(int /*sig*/, siginfo_t * /*info*/, void *uctx)
{
    // The timer only ever targets registered threads, so this TLS read
    // cannot take the registration slow path (no locks, no allocation).
    const int tid = ThreadId::self() %
                    static_cast<int>(ThreadId::kMaxThreads);
    ThreadSlot &slot = g_slots[static_cast<size_t>(tid)];
    SampleRing *ring = slot.ring.load(std::memory_order_acquire);
    if (ring == nullptr)
        return;
    uint64_t frames[detail::kMaxFrames];
    const uint32_t n =
        unwindFromContext(uctx, frames,
                          static_cast<uint32_t>(detail::kMaxFrames),
                          slot.stack_lo, slot.stack_hi);
    if (n == 0)
        return;
    ring->emit(trace::detail::t_cur_layer, trace::detail::t_cur_leaf,
               frames, n);
}

void
installSigprofHandler()
{
    struct sigaction sa {};
    sa.sa_sigaction = samplerHandler;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGPROF, &sa, nullptr);
}

/** Requires g_prof_mu. Create + arm the slot's interval timer. */
void
armSlot(ThreadSlot &slot, int hz)
{
    if (slot.armed.load(std::memory_order_relaxed))
        return;
    const int ktid = slot.ktid.load(std::memory_order_acquire);
    if (ktid < 0)
        return;
    if (slot.ring.load(std::memory_order_relaxed) == nullptr) {
        slot.ring.store(new SampleRing(g_ring_capacity),  // never freed
                        std::memory_order_release);
    }
    struct sigevent sev {};
    sev.sigev_notify = SIGEV_THREAD_ID;
    sev.sigev_signo = SIGPROF;
    sev.sigev_notify_thread_id = ktid;
    timer_t t;
    if (::timer_create(threadCpuClock(ktid), &sev, &t) != 0) {
        g_timer_failures.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    const long period_ns = 1000000000L / hz;
    struct itimerspec its {};
    its.it_interval.tv_sec = period_ns / 1000000000L;
    its.it_interval.tv_nsec = period_ns % 1000000000L;
    its.it_value = its.it_interval;
    if (::timer_settime(t, 0, &its, nullptr) != 0) {
        ::timer_delete(t);
        g_timer_failures.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    slot.timer = t;
    slot.armed.store(true, std::memory_order_release);
}

/** Requires g_prof_mu. */
void
disarmSlot(ThreadSlot &slot)
{
    if (!slot.armed.load(std::memory_order_relaxed))
        return;
    ::timer_delete(slot.timer);
    slot.armed.store(false, std::memory_order_release);
}

/** Re-derive the tracer's layer tracking from both profilers. */
void
recomputeLayerTracking()
{
    trace::detail::setLayerTracking(
        g_profiling.load(std::memory_order_relaxed) ||
        detail::g_lock_prof.load(std::memory_order_relaxed));
}

}  // namespace

namespace detail {

void
onThreadRegistered(int tid)
{
    const int idx = tid % ThreadId::kMaxThreads;
    ThreadSlot &slot = g_slots[static_cast<size_t>(idx)];
    const int ktid = static_cast<int>(::syscall(SYS_gettid));

    // Stack bounds for the handler's frame-pointer validation. Written
    // before ktid publishes the slot, and only consulted by this
    // thread's own handler.
    pthread_attr_t attr;
    if (pthread_getattr_np(pthread_self(), &attr) == 0) {
        void *base = nullptr;
        size_t size = 0;
        if (pthread_attr_getstack(&attr, &base, &size) == 0) {
            slot.stack_lo = reinterpret_cast<uintptr_t>(base);
            slot.stack_hi = slot.stack_lo + size;
        }
        pthread_attr_destroy(&attr);
    }

    std::lock_guard<std::mutex> lock(g_prof_mu);
    slot.ktid.store(ktid, std::memory_order_release);
    if (g_profiling.load(std::memory_order_relaxed))
        armSlot(slot, g_hz.load(std::memory_order_relaxed));
}

void
onThreadExit(int tid)
{
    const int idx = tid % ThreadId::kMaxThreads;
    ThreadSlot &slot = g_slots[static_cast<size_t>(idx)];
    std::lock_guard<std::mutex> lock(g_prof_mu);
    disarmSlot(slot);
    slot.ktid.store(-1, std::memory_order_release);
}

}  // namespace detail

// ---------------------------------------------------------------------
// SampleRing
// ---------------------------------------------------------------------

namespace {

size_t
roundUpPow2(size_t v)
{
    size_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

}  // namespace

SampleRing::SampleRing(size_t capacity_samples)
    : capacity_(roundUpPow2(capacity_samples < 64 ? 64
                                                  : capacity_samples)),
      mask_(capacity_ - 1),
      words_(new std::atomic<uint64_t>[capacity_ * detail::kSlotWords])
{
    for (size_t i = 0; i < capacity_ * detail::kSlotWords; i++)
        words_[i].store(0, std::memory_order_relaxed);
}

void
SampleRing::emit(uint8_t layer, uint32_t leaf_id, const uint64_t *frames,
                 uint32_t nframes)
{
    if (nframes > detail::kMaxFrames)
        nframes = detail::kMaxFrames;
    const uint64_t idx = head_.load(std::memory_order_relaxed);
    std::atomic<uint64_t> *w =
        &words_[(idx & mask_) * detail::kSlotWords];
    // Slot layout: w0 seq (0 = writing, idx+1 = published),
    // w1 meta = leaf(32) | nframes(8) | layer(8), w2.. frames.
    w[0].store(0, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    w[1].store((static_cast<uint64_t>(leaf_id) << 32) |
                   (static_cast<uint64_t>(nframes) << 8) |
                   static_cast<uint64_t>(layer),
               std::memory_order_relaxed);
    for (uint32_t i = 0; i < nframes; i++)
        w[2 + i].store(frames[i], std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    w[0].store(idx + 1, std::memory_order_relaxed);
    head_.store(idx + 1, std::memory_order_release);
}

void
SampleRing::snapshot(uint64_t since, std::vector<Sample> &out) const
{
    const uint64_t h = head_.load(std::memory_order_acquire);
    uint64_t lo = h > capacity_ ? h - capacity_ : 0;
    lo = std::max(lo, since);
    for (uint64_t idx = lo; idx < h; idx++) {
        const std::atomic<uint64_t> *w =
            &words_[(idx & mask_) * detail::kSlotWords];
        const uint64_t seq1 = w[0].load(std::memory_order_acquire);
        if (seq1 != idx + 1)
            continue;
        Sample s;
        const uint64_t meta = w[1].load(std::memory_order_relaxed);
        s.layer = static_cast<uint8_t>(meta);
        s.nframes = static_cast<uint32_t>((meta >> 8) & 0xff);
        s.leaf_id = static_cast<uint32_t>(meta >> 32);
        if (s.nframes == 0 || s.nframes > detail::kMaxFrames)
            continue;
        for (uint32_t i = 0; i < s.nframes; i++)
            s.frames[i] = w[2 + i].load(std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_acquire);
        if (w[0].load(std::memory_order_relaxed) != idx + 1)
            continue;  // torn: overwritten mid-read
        out.push_back(s);
    }
}

// ---------------------------------------------------------------------
// Profiler
// ---------------------------------------------------------------------

Profiler &
Profiler::global()
{
    static Profiler *g = new Profiler();  // never destroyed
    return *g;
}

bool
Profiler::start(int hz)
{
    if (hz <= 0)
        return false;
    hz = std::min(hz, 1000);
    {
        std::lock_guard<std::mutex> lock(g_prof_mu);
        if (g_profiling.load(std::memory_order_relaxed))
            return false;
        installSigprofHandler();
        g_hz.store(hz, std::memory_order_relaxed);
        hz_.store(hz, std::memory_order_relaxed);
        g_profiling.store(true, std::memory_order_relaxed);
        running_.store(true, std::memory_order_release);
        recomputeLayerTracking();
        setLockProfiling(true);
        for (auto &slot : g_slots) {
            if (slot.ktid.load(std::memory_order_acquire) >= 0)
                armSlot(slot, hz);
        }
    }
    // Outside g_prof_mu: the logger's first use on a thread runs
    // ThreadId::self() -> onThreadRegistered, which takes g_prof_mu.
    PRISM_LOG_INFO("prof", "cpu sampler armed at %d Hz (%d threads)",
                   hz, threadsArmed());
    return true;
}

void
Profiler::stop()
{
    std::lock_guard<std::mutex> lock(g_prof_mu);
    if (!g_profiling.load(std::memory_order_relaxed))
        return;
    for (auto &slot : g_slots)
        disarmSlot(slot);
    g_profiling.store(false, std::memory_order_relaxed);
    g_hz.store(0, std::memory_order_relaxed);
    hz_.store(0, std::memory_order_relaxed);
    running_.store(false, std::memory_order_release);
    setLockProfiling(false);
    recomputeLayerTracking();
}

uint64_t
Profiler::samplesTaken() const
{
    uint64_t total = 0;
    for (const auto &slot : g_slots) {
        const SampleRing *r = slot.ring.load(std::memory_order_acquire);
        if (r != nullptr)
            total += r->head();
    }
    return total;
}

uint64_t
Profiler::samplesDropped() const
{
    uint64_t dropped = 0;
    for (const auto &slot : g_slots) {
        const SampleRing *r = slot.ring.load(std::memory_order_acquire);
        if (r != nullptr && r->head() > r->capacity())
            dropped += r->head() - r->capacity();
    }
    return dropped;
}

int
Profiler::threadsArmed() const
{
    int n = 0;
    for (const auto &slot : g_slots)
        if (slot.armed.load(std::memory_order_acquire))
            n++;
    return n;
}

Profiler::Marks
Profiler::mark() const
{
    Marks m{};
    for (size_t i = 0; i < m.size(); i++) {
        const SampleRing *r =
            g_slots[i].ring.load(std::memory_order_acquire);
        m[i] = r != nullptr ? r->head() : 0;
    }
    return m;
}

namespace {

/**
 * Best-effort symbol name for a PC. Call-site frames (index > 0) are
 * return addresses, so look up `addr - 1` to land inside the calling
 * function instead of whatever follows the call. Demangled names get
 * spaces and semicolons squeezed out so the folded format (frames
 * joined by ';', count after the last space) stays parseable.
 */
std::string
symbolize(uint64_t addr, bool is_leaf, bool *symbolized)
{
    Dl_info info{};
    const uintptr_t probe =
        static_cast<uintptr_t>(is_leaf ? addr : addr - 1);
    if (::dladdr(reinterpret_cast<void *>(probe), &info) != 0 &&
        info.dli_sname != nullptr) {
        *symbolized = true;
        int status = 0;
        char *dem = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr,
                                        &status);
        std::string out =
            (status == 0 && dem != nullptr) ? dem : info.dli_sname;
        std::free(dem);
        for (char &c : out) {
            if (c == ';')
                c = ',';
        }
        out.erase(std::remove(out.begin(), out.end(), ' '), out.end());
        return out;
    }
    // No symbol name (static function, stripped library): attribute
    // to the containing module + offset, which still groups frames
    // usefully ("libc.so.6+0x9a12"). Raw hex only when even the
    // module is unknown — checkers count those as unsymbolized.
    if (info.dli_fname != nullptr && info.dli_fbase != nullptr) {
        const char *base = std::strrchr(info.dli_fname, '/');
        base = base != nullptr ? base + 1 : info.dli_fname;
        char buf[192];
        std::snprintf(buf, sizeof(buf), "%s+0x%llx", base,
                      static_cast<unsigned long long>(
                          probe - reinterpret_cast<uintptr_t>(
                                      info.dli_fbase)));
        *symbolized = true;
        return buf;
    }
    *symbolized = false;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(addr));
    return buf;
}

}  // namespace

std::string
Profiler::collectFolded(const Marks *since) const
{
    // Aggregate raw samples first; symbolize each distinct PC once.
    // Key = layer, leaf span id, then frames leaf-first.
    std::map<std::vector<uint64_t>, uint64_t> agg;
    uint64_t total = 0;
    int threads_seen = 0;
    for (size_t i = 0; i < ThreadId::kMaxThreads; i++) {
        const SampleRing *r =
            g_slots[i].ring.load(std::memory_order_acquire);
        if (r == nullptr)
            continue;
        std::vector<SampleRing::Sample> samples;
        r->snapshot(since != nullptr ? (*since)[i] : 0, samples);
        if (samples.empty())
            continue;
        threads_seen++;
        for (const auto &s : samples) {
            std::vector<uint64_t> key;
            key.reserve(2 + s.nframes);
            key.push_back(s.layer);
            key.push_back(s.leaf_id);
            for (uint32_t f = 0; f < s.nframes; f++)
                key.push_back(s.frames[f]);
            agg[std::move(key)]++;
            total++;
        }
    }

    std::map<uint64_t, std::string> sym_leaf, sym_ret;
    uint64_t frames_total = 0, frames_symbolized = 0;
    auto lookup = [&](uint64_t addr, bool leaf) -> const std::string & {
        auto &cache = leaf ? sym_leaf : sym_ret;
        auto it = cache.find(addr);
        if (it == cache.end()) {
            bool ok = false;
            it = cache.emplace(addr, symbolize(addr, leaf, &ok)).first;
        }
        return it->second;
    };

    auto &treg = trace::TraceRegistry::global();
    // Distinct PCs can symbolize to the same frame name (inlined
    // copies, module+offset fallbacks), so re-merge after
    // symbolization to keep one folded line per rendered stack.
    std::map<std::string, uint64_t> merged;
    for (const auto &[key, count] : agg) {
        const auto layer = static_cast<size_t>(key[0]);
        const auto leaf_id = static_cast<uint32_t>(key[1]);
        std::string line = trace::layerName(layer);
        if (leaf_id != 0) {
            const std::string span = treg.nameOf(leaf_id);
            if (!span.empty()) {
                line += ";span:";
                line += span;
            }
        }
        // Frames are captured leaf-first; folded wants root-first.
        for (size_t f = key.size(); f > 2; f--) {
            const bool is_leaf = (f == 3);
            const std::string &name = lookup(key[f - 1], is_leaf);
            frames_total++;
            if (name.compare(0, 2, "0x") != 0)
                frames_symbolized++;
            line += ';';
            line += name;
        }
        merged[std::move(line)] += count;
    }

    std::string out;
    for (const auto &[line, count] : merged) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), " %llu\n",
                      static_cast<unsigned long long>(count));
        out += line;
        out += buf;
    }

    char head[192];
    std::snprintf(head, sizeof(head),
                  "# prism cpu profile: samples=%llu stacks=%zu "
                  "threads=%d hz=%d symbolized=%.3f\n",
                  static_cast<unsigned long long>(total), merged.size(),
                  threads_seen, hz(),
                  frames_total == 0
                      ? 0.0
                      : static_cast<double>(frames_symbolized) /
                            static_cast<double>(frames_total));
    return head + out;
}

std::string
Profiler::profileForWindow(int hz, double seconds)
{
    seconds = std::clamp(seconds, 0.1, 60.0);
    const bool started = start(hz > 0 ? hz : 99);
    const Marks marks = mark();
    std::this_thread::sleep_for(std::chrono::milliseconds(
        static_cast<int64_t>(seconds * 1000.0)));
    std::string folded = collectFolded(&marks);
    if (started)
        stop();
    return folded;
}

void
Profiler::setRingCapacity(size_t samples)
{
    std::lock_guard<std::mutex> lock(g_prof_mu);
    g_ring_capacity = roundUpPow2(samples < 64 ? 64 : samples);
}

void
Profiler::publishStats() const
{
    auto &reg = stats::StatsRegistry::global();
    reg.gauge("prism.prof.samples", "samples")
        .set(static_cast<int64_t>(samplesTaken()));
    reg.gauge("prism.prof.samples_dropped", "samples")
        .set(static_cast<int64_t>(samplesDropped()));
    reg.gauge("prism.prof.hz", "hz").set(hz());
    reg.gauge("prism.prof.threads_armed", "threads").set(threadsArmed());
    reg.gauge("prism.prof.timer_failures", "failures")
        .set(static_cast<int64_t>(
            g_timer_failures.load(std::memory_order_relaxed)));
}

int
resolveHz(int option_value)
{
    if (option_value > 0)
        return option_value;
    if (const char *env = std::getenv("PRISM_PROF_HZ");
        env != nullptr && *env != '\0')
        return std::atoi(env);
    return 0;
}

// ---------------------------------------------------------------------
// Lock-contention profiler
// ---------------------------------------------------------------------

void
LockSite::noteHolder(uint64_t key, uint64_t wait_ns_delta)
{
    if (key == 0)
        key = 1;  // catch-all "unknown holder" bucket
    for (auto &b : holders) {
        uint64_t cur = b.key.load(std::memory_order_relaxed);
        if (cur == 0) {
            // Claim the empty bucket; a racing loser just probes on.
            if (!b.key.compare_exchange_strong(
                    cur, key, std::memory_order_relaxed))
                continue;
            cur = key;
        }
        if (cur == key) {
            b.count.fetch_add(1, std::memory_order_relaxed);
            b.wait_ns.fetch_add(wait_ns_delta,
                                std::memory_order_relaxed);
            return;
        }
    }
    // Table full: fold into the catch-all bucket (key 1 lives in some
    // slot by now or the table is saturated with distinct holders;
    // dropping attribution keeps the fast path bounded).
    for (auto &b : holders) {
        if (b.key.load(std::memory_order_relaxed) == 1) {
            b.count.fetch_add(1, std::memory_order_relaxed);
            b.wait_ns.fetch_add(wait_ns_delta,
                                std::memory_order_relaxed);
            return;
        }
    }
}

namespace {

std::mutex g_sites_mu;

std::map<std::string, LockSite *> &
siteMap()
{
    static auto *m = new std::map<std::string, LockSite *>();
    return *m;
}

}  // namespace

LockSite *
internLockSite(const char *name)
{
    std::lock_guard<std::mutex> lock(g_sites_mu);
    auto &m = siteMap();
    auto it = m.find(name);
    if (it != m.end())
        return it->second;
    auto *s = new LockSite();  // never freed
    s->name = name;
    auto &reg = stats::StatsRegistry::global();
    const std::string base = std::string("prism.lock.") + name;
    s->acquisitions = &reg.counter(base + ".acquisitions", "acqs");
    s->contended = &reg.counter(base + ".contended", "acqs");
    s->wait_ns_total = &reg.counter(base + ".wait_ns_total", "ns");
    s->wait_ns = &reg.histogram(base + ".wait_ns", "ns");
    m.emplace(name, s);
    return s;
}

void
setLockProfiling(bool on)
{
    detail::g_lock_prof.store(on, std::memory_order_relaxed);
    recomputeLayerTracking();
}

bool
lockProfilingEnabled()
{
    return detail::g_lock_prof.load(std::memory_order_relaxed);
}

std::string
renderContentionFolded()
{
    std::vector<std::pair<std::string, LockSite *>> sites;
    {
        std::lock_guard<std::mutex> lock(g_sites_mu);
        for (const auto &[name, site] : siteMap())
            sites.emplace_back(name, site);
    }
    auto &treg = trace::TraceRegistry::global();
    std::string out = "# prism lock contention profile "
                      "(weight = wait microseconds)\n";
    for (const auto &[name, site] : sites) {
        char buf[256];
        std::snprintf(
            buf, sizeof(buf),
            "# site %s: acquisitions=%llu contended=%llu "
            "wait_ms=%.3f\n",
            name.c_str(),
            static_cast<unsigned long long>(site->acquisitions->value()),
            static_cast<unsigned long long>(site->contended->value()),
            static_cast<double>(site->wait_ns_total->value()) / 1e6);
        out += buf;
        for (const auto &b : site->holders) {
            const uint64_t key = b.key.load(std::memory_order_relaxed);
            if (key == 0)
                continue;
            const uint64_t wait_us =
                b.wait_ns.load(std::memory_order_relaxed) / 1000;
            const uint64_t count =
                b.count.load(std::memory_order_relaxed);
            if (count == 0)
                continue;
            std::string holder;
            if (key == 1) {
                holder = "holder:unknown";
            } else {
                const auto leaf = static_cast<uint32_t>(key >> 8);
                const auto layer = static_cast<size_t>(key & 0xff);
                holder = std::string("holder:") +
                         trace::layerName(layer);
                const std::string span = treg.nameOf(leaf);
                if (!span.empty()) {
                    holder += ';';
                    holder += span;
                }
            }
            std::snprintf(buf, sizeof(buf), "lock:%s;%s %llu\n",
                          name.c_str(), holder.c_str(),
                          static_cast<unsigned long long>(
                              wait_us == 0 ? 1 : wait_us));
            out += buf;
        }
    }
    return out;
}

}  // namespace prism::prof
