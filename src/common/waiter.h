/**
 * @file
 * Minimal futex-style completion flag built on C++20 atomic wait.
 */
#pragma once

#include <atomic>
#include <cstdint>

namespace prism {

/** One-shot (or small-state-machine) completion signal. */
struct Waiter {
    std::atomic<uint32_t> state{0};

    void
    signal(uint32_t v = 1)
    {
        state.store(v, std::memory_order_release);
        state.notify_all();
    }

    /** Block until the state becomes non-zero; returns it. */
    uint32_t
    wait()
    {
        uint32_t v;
        while ((v = state.load(std::memory_order_acquire)) == 0)
            state.wait(0, std::memory_order_acquire);
        return v;
    }
};

}  // namespace prism
