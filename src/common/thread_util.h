/**
 * @file
 * Thread identity and affinity helpers.
 *
 * Prism keys several structures by thread (per-thread PWB, per-thread
 * latency histograms); ThreadId hands out small dense ids for indexing
 * those arrays without hashing.
 */
#pragma once

#include <cstdint>

namespace prism {

/**
 * Dense per-thread ids, assigned on first use. An exiting thread
 * returns its id to a LIFO free list, so a later thread may adopt the
 * id — and with it every per-id slot keyed by ThreadId (a PWB, a trace
 * ring, a latency shard), *including its accumulated contents*.
 * Consumers must treat adopted state as valid history, not as theirs:
 * e.g. a TraceRing's head is a monotonic event count that keeps
 * counting across adoption (see docs/OBSERVABILITY.md).
 */
class ThreadId {
  public:
    static constexpr int kMaxThreads = 256;

    /** @return this thread's dense id in [0, kMaxThreads). */
    static int self();

    /** @return number of ids handed out so far. */
    static int count();
};

/** Pin the calling thread to @p cpu; no-op if pinning fails (CI/sandbox). */
void pinThreadToCpu(int cpu);

}  // namespace prism
