#include "common/fault.h"

#include <atomic>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "common/logging.h"
#include "common/rand.h"
#include "common/stats.h"
#include "common/trace.h"

namespace prism::fault {

namespace {
// Process-wide "anything armed?" flag, read by every PRISM_FAULT_POINT.
std::atomic<uint64_t> g_armed_count{0};
}  // namespace

bool
enabled()
{
    return g_armed_count.load(std::memory_order_relaxed) != 0;
}

struct Site {
    std::string name;
    mutable std::mutex mu;
    bool armed = false;
    FaultSpec spec;
    uint64_t hits = 0;
    uint64_t fires = 0;
    Xorshift rng{1};
    std::function<void(uint64_t)> cb;
    stats::Counter *fired_counter = nullptr;  // lazily bound on first arm
};

struct FaultRegistry::Impl {
    mutable std::mutex mu;  // protects the name map and deque growth
    std::unordered_map<std::string, uint32_t> ids;
    std::deque<Site> sites;  // stable addresses; indexed by site id
    uint64_t seed = 1;
    stats::Counter *reg_hits = nullptr;
    stats::Counter *reg_fires = nullptr;
    stats::Gauge *reg_armed = nullptr;

    Site *byName(std::string_view name)
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = ids.find(std::string(name));
        return it == ids.end() ? nullptr : &sites[it->second];
    }

    // Deque references are stable, but indexing concurrently with growth
    // is not; take the registry lock for the lookup only.
    Site &byId(uint32_t id)
    {
        std::lock_guard<std::mutex> lock(mu);
        return sites[id];
    }
};

FaultRegistry::FaultRegistry() : impl_(new Impl)
{
    auto &reg = stats::StatsRegistry::global();
    impl_->reg_hits = &reg.counter("prism.fault.hits", "ops");
    impl_->reg_fires = &reg.counter("prism.fault.fired", "ops");
    impl_->reg_armed = &reg.gauge("prism.fault.armed_sites", "sites");
}

FaultRegistry &
FaultRegistry::global()
{
    static FaultRegistry *r = new FaultRegistry();  // leaked: process-wide
    return *r;
}

uint32_t
FaultRegistry::siteId(std::string_view name)
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    auto it = impl_->ids.find(std::string(name));
    if (it != impl_->ids.end())
        return it->second;
    const uint32_t id = static_cast<uint32_t>(impl_->sites.size());
    impl_->sites.emplace_back();
    Site &s = impl_->sites.back();
    s.name = std::string(name);
    s.rng = Xorshift(hash64(impl_->seed ^ hash64(id + 1)));
    impl_->ids.emplace(s.name, id);
    return id;
}

void
FaultRegistry::arm(std::string_view site, const FaultSpec &spec)
{
    Site &s = impl_->byId(siteId(site));
    std::lock_guard<std::mutex> lock(s.mu);
    if (!s.armed)
        g_armed_count.fetch_add(1, std::memory_order_relaxed);
    s.armed = true;
    s.spec = spec;
    if (s.fired_counter == nullptr) {
        s.fired_counter = &stats::StatsRegistry::global().counter(
            "prism.fault.fired." + s.name, "ops");
    }
    impl_->reg_armed->set(
        static_cast<int64_t>(g_armed_count.load(std::memory_order_relaxed)));
}

bool
FaultRegistry::armFromString(std::string_view directive, std::string *err)
{
    auto fail = [err](const std::string &msg) {
        if (err != nullptr)
            *err = msg;
        return false;
    };
    const size_t eq = directive.find('=');
    if (eq == std::string_view::npos || eq == 0)
        return fail("expected site=trigger[,payload:V][,oneshot]: \"" +
                    std::string(directive) + "\"");
    const std::string site(directive.substr(0, eq));
    FaultSpec spec;
    std::string rest(directive.substr(eq + 1));
    std::stringstream ss(rest);
    std::string part;
    bool have_trigger = false;
    while (std::getline(ss, part, ',')) {
        const size_t colon = part.find(':');
        const std::string key = part.substr(0, colon);
        const std::string val =
            colon == std::string::npos ? "" : part.substr(colon + 1);
        try {
            if (key == "prob") {
                spec.trigger = Trigger::kProbability;
                spec.probability = std::stod(val);
                have_trigger = true;
            } else if (key == "nth") {
                spec.trigger = Trigger::kNth;
                spec.n = std::stoull(val);
                have_trigger = true;
            } else if (key == "every") {
                spec.trigger = Trigger::kEvery;
                spec.n = std::stoull(val);
                have_trigger = true;
            } else if (key == "once") {
                spec.trigger = Trigger::kOnce;
                spec.one_shot = true;
                have_trigger = true;
            } else if (key == "payload") {
                spec.payload = std::stoull(val);
            } else if (key == "oneshot") {
                spec.one_shot = true;
            } else {
                return fail("unknown fault key \"" + key + "\" in \"" +
                            std::string(directive) + "\"");
            }
        } catch (const std::exception &) {
            return fail("bad number \"" + val + "\" in \"" +
                        std::string(directive) + "\"");
        }
    }
    if (!have_trigger)
        return fail("no trigger (prob/nth/every/once) in \"" +
                    std::string(directive) + "\"");
    if (spec.trigger == Trigger::kProbability &&
        (spec.probability < 0.0 || spec.probability > 1.0))
        return fail("prob out of [0,1] in \"" + std::string(directive) +
                    "\"");
    if ((spec.trigger == Trigger::kNth || spec.trigger == Trigger::kEvery) &&
        spec.n == 0)
        return fail("nth/every must be >= 1 in \"" +
                    std::string(directive) + "\"");
    arm(site, spec);
    return true;
}

bool
FaultRegistry::armSchedule(std::string_view schedule, std::string *err)
{
    std::stringstream ss{std::string(schedule)};
    std::string directive;
    while (std::getline(ss, directive, ';')) {
        if (directive.empty())
            continue;
        if (!armFromString(directive, err))
            return false;
    }
    return true;
}

void
FaultRegistry::armFromEnv()
{
    const char *env = std::getenv("PRISM_FAULTS");
    if (env == nullptr || env[0] == '\0')
        return;
    std::string err;
    if (!armSchedule(env, &err))
        fatal("PRISM_FAULTS: %s", err.c_str());
}

void
FaultRegistry::disarm(std::string_view site)
{
    Site *s = impl_->byName(site);
    if (s == nullptr)
        return;
    std::lock_guard<std::mutex> lock(s->mu);
    if (s->armed)
        g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    s->armed = false;
    impl_->reg_armed->set(
        static_cast<int64_t>(g_armed_count.load(std::memory_order_relaxed)));
}

void
FaultRegistry::disarmAll()
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (Site &s : impl_->sites) {
        std::lock_guard<std::mutex> slock(s.mu);
        if (s.armed)
            g_armed_count.fetch_sub(1, std::memory_order_relaxed);
        s.armed = false;
        s.cb = nullptr;
        s.hits = 0;
        s.fires = 0;
    }
    impl_->reg_armed->set(0);
}

void
FaultRegistry::setSeed(uint64_t seed)
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->seed = seed;
    for (size_t i = 0; i < impl_->sites.size(); i++) {
        Site &s = impl_->sites[i];
        std::lock_guard<std::mutex> slock(s.mu);
        s.rng = Xorshift(hash64(seed ^ hash64(i + 1)));
        s.hits = 0;
        s.fires = 0;
    }
}

void
FaultRegistry::onFire(std::string_view site,
                      std::function<void(uint64_t)> cb)
{
    Site &s = impl_->byId(siteId(site));
    std::lock_guard<std::mutex> lock(s.mu);
    s.cb = std::move(cb);
}

bool
FaultRegistry::shouldFire(uint32_t site_id, uint64_t *payload_out)
{
    Site &s = impl_->byId(site_id);
    std::function<void(uint64_t)> cb;
    uint64_t payload = 0;
    {
        std::lock_guard<std::mutex> lock(s.mu);
        s.hits++;
        if (!s.armed)
            return false;
        impl_->reg_hits->inc();
        bool fire = false;
        switch (s.spec.trigger) {
        case Trigger::kProbability:
            fire = s.rng.nextDouble() < s.spec.probability;
            break;
        case Trigger::kNth:
            fire = s.hits == s.spec.n;
            break;
        case Trigger::kEvery:
            fire = s.hits % s.spec.n == 0;
            break;
        case Trigger::kOnce:
            fire = true;
            break;
        }
        if (!fire)
            return false;
        s.fires++;
        if (s.spec.one_shot || s.spec.trigger == Trigger::kOnce) {
            s.armed = false;
            g_armed_count.fetch_sub(1, std::memory_order_relaxed);
            impl_->reg_armed->set(static_cast<int64_t>(
                g_armed_count.load(std::memory_order_relaxed)));
        }
        if (s.fired_counter != nullptr)
            s.fired_counter->inc();
        payload = s.spec.payload;
        cb = s.cb;  // copy so the callback runs outside the site lock
    }
    if (payload_out != nullptr)
        *payload_out = payload;
    impl_->reg_fires->inc();
    PRISM_TRACE_INSTANT("fault.fire");
    if (cb)
        cb(payload);
    return true;
}

std::vector<SiteInfo>
FaultRegistry::sites() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    std::vector<SiteInfo> out;
    out.reserve(impl_->sites.size());
    for (const Site &s : impl_->sites) {
        std::lock_guard<std::mutex> slock(s.mu);
        SiteInfo info;
        info.name = s.name;
        info.armed = s.armed;
        info.spec = s.spec;
        info.hits = s.hits;
        info.fires = s.fires;
        out.push_back(std::move(info));
    }
    return out;
}

std::string
FaultRegistry::scheduleString() const
{
    std::string out;
    for (const SiteInfo &info : sites()) {
        if (!info.armed)
            continue;
        if (!out.empty())
            out += ";";
        out += info.name + "=" + specString(info.spec);
    }
    return out;
}

uint64_t
FaultRegistry::totalFires() const
{
    uint64_t total = 0;
    for (const SiteInfo &info : sites())
        total += info.fires;
    return total;
}

std::string
specString(const FaultSpec &spec)
{
    std::ostringstream out;
    switch (spec.trigger) {
    case Trigger::kProbability:
        out << "prob:" << spec.probability;
        break;
    case Trigger::kNth:
        out << "nth:" << spec.n;
        break;
    case Trigger::kEvery:
        out << "every:" << spec.n;
        break;
    case Trigger::kOnce:
        out << "once";
        break;
    }
    if (spec.payload != 0)
        out << ",payload:" << spec.payload;
    if (spec.one_shot && spec.trigger != Trigger::kOnce)
        out << ",oneshot";
    return out.str();
}

}  // namespace prism::fault
