/**
 * @file
 * Minimal logging and invariant-checking helpers.
 *
 * Follows the gem5 split between "this is a bug in Prism" (PRISM_CHECK /
 * panic-style, aborts) and "the user asked for something impossible"
 * (prism::fatal, exits with an error).
 */
#pragma once

#include <cstdio>
#include <cstdlib>

namespace prism {

/** Print an error caused by invalid user input / configuration and exit. */
[[noreturn]] inline void
fatal(const char *fmt, auto... args)
{
    std::fprintf(stderr, "fatal: ");
    if constexpr (sizeof...(args) == 0) {
        std::fprintf(stderr, "%s", fmt);
    } else {
        std::fprintf(stderr, fmt, args...);
    }
    std::fprintf(stderr, "\n");
    std::exit(1);
}

namespace detail {

[[noreturn]] inline void
checkFailed(const char *expr, const char *file, int line)
{
    std::fprintf(stderr, "PRISM_CHECK failed: %s at %s:%d\n",
                 expr, file, line);
    std::abort();
}

}  // namespace detail
}  // namespace prism

/**
 * Invariant check that stays enabled in release builds. Use for conditions
 * that indicate a Prism bug; violating them would corrupt user data.
 */
#define PRISM_CHECK(expr)                                                  \
    do {                                                                   \
        if (!(expr)) {                                                     \
            ::prism::detail::checkFailed(#expr, __FILE__, __LINE__);       \
        }                                                                  \
    } while (0)

/** Debug-only check for hot paths. */
#ifdef NDEBUG
#define PRISM_DCHECK(expr) do { } while (0)
#else
#define PRISM_DCHECK(expr) PRISM_CHECK(expr)
#endif
