/**
 * @file
 * Minimal logging and invariant-checking helpers.
 *
 * Follows the gem5 split between "this is a bug in Prism" (PRISM_CHECK /
 * panic-style, aborts) and "the user asked for something impossible"
 * (prism::fatal, exits with an error).
 */
#pragma once

#include <cstdio>
#include <cstdlib>

namespace prism {
namespace detail {

/**
 * Both defined in common/log.cc: they emit through the structured
 * logger (common/log.h) so the message lands in the in-memory log tail
 * — and hence in any crash postmortem — before the process dies.
 */
[[noreturn]] void checkFailed(const char *expr, const char *file,
                              int line);
[[noreturn]] void fatalMessage(const char *msg);

}  // namespace detail

/** Print an error caused by invalid user input / configuration and exit. */
[[noreturn]] inline void
fatal(const char *fmt, auto... args)
{
    char msg[1024];
    if constexpr (sizeof...(args) == 0) {
        std::snprintf(msg, sizeof(msg), "%s", fmt);
    } else {
        std::snprintf(msg, sizeof(msg), fmt, args...);
    }
    detail::fatalMessage(msg);
}

}  // namespace prism

/**
 * Invariant check that stays enabled in release builds. Use for conditions
 * that indicate a Prism bug; violating them would corrupt user data.
 */
#define PRISM_CHECK(expr)                                                  \
    do {                                                                   \
        if (!(expr)) {                                                     \
            ::prism::detail::checkFailed(#expr, __FILE__, __LINE__);       \
        }                                                                  \
    } while (0)

/** Debug-only check for hot paths. */
#ifdef NDEBUG
#define PRISM_DCHECK(expr) do { } while (0)
#else
#define PRISM_DCHECK(expr) PRISM_CHECK(expr)
#endif
