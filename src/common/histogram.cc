#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "common/logging.h"

namespace prism {

Histogram::Histogram()
    : buckets_(static_cast<size_t>(kOctaves) * kSubBuckets, 0),
      count_(0), sum_(0), min_(UINT64_MAX), max_(0)
{
}

int
Histogram::bucketFor(uint64_t value)
{
    if (value < kSubBuckets)
        return static_cast<int>(value);
    const int msb = 63 - std::countl_zero(value);
    const int octave = msb - kSubBucketBits + 1;
    const int sub = static_cast<int>(
        (value >> (msb - kSubBucketBits)) & (kSubBuckets - 1));
    return octave * kSubBuckets + sub;
}

uint64_t
Histogram::bucketUpperBound(int index)
{
    const int octave = index / kSubBuckets;
    const int sub = index % kSubBuckets;
    if (octave == 0)
        return static_cast<uint64_t>(sub);
    const int msb = octave + kSubBucketBits - 1;
    const uint64_t base = (1ull << msb) | (static_cast<uint64_t>(sub)
                                           << (msb - kSubBucketBits));
    // Upper edge of the linear sub-bucket.
    return base + (1ull << (msb - kSubBucketBits)) - 1;
}

void
Histogram::record(uint64_t value)
{
    const int idx = bucketFor(value);
    PRISM_DCHECK(idx < static_cast<int>(buckets_.size()));
    buckets_[static_cast<size_t>(idx)]++;
    count_++;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

void
Histogram::merge(const Histogram &other)
{
    for (size_t i = 0; i < buckets_.size(); i++)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
Histogram::subtract(const Histogram &earlier)
{
    min_ = UINT64_MAX;
    max_ = 0;
    for (size_t i = 0; i < buckets_.size(); i++) {
        const uint64_t e = earlier.buckets_[i];
        buckets_[i] -= std::min(buckets_[i], e);
        if (buckets_[i] == 0)
            continue;
        const int idx = static_cast<int>(i);
        // Lower edge of the lowest surviving bucket, upper edge of the
        // highest: tightest bounds the bucketing can give.
        if (min_ == UINT64_MAX)
            min_ = idx == 0 ? 0 : bucketUpperBound(idx - 1) + 1;
        max_ = bucketUpperBound(idx);
    }
    count_ -= std::min(count_, earlier.count_);
    sum_ -= std::min(sum_, earlier.sum_);
    if (count_ == 0) {
        min_ = UINT64_MAX;
        max_ = 0;
    }
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0;
    min_ = UINT64_MAX;
    max_ = 0;
}

double
Histogram::mean() const
{
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
}

uint64_t
Histogram::percentile(double q) const
{
    if (count_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    const auto target = static_cast<uint64_t>(
        q * static_cast<double>(count_ - 1)) + 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets_.size(); i++) {
        seen += buckets_[i];
        if (seen >= target)
            return std::min(bucketUpperBound(static_cast<int>(i)), max_);
    }
    return max_;
}

std::vector<std::pair<uint64_t, uint64_t>>
Histogram::nonZeroBuckets() const
{
    std::vector<std::pair<uint64_t, uint64_t>> out;
    for (size_t i = 0; i < buckets_.size(); i++) {
        if (buckets_[i] != 0)
            out.emplace_back(bucketUpperBound(static_cast<int>(i)),
                             buckets_[i]);
    }
    return out;
}

std::string
Histogram::summaryUs() const
{
    char buf[224];
    std::snprintf(buf, sizeof(buf),
                  "avg=%.1fus p50=%.1fus p90=%.1fus p99=%.1fus "
                  "p999=%.1fus max=%.1fus n=%llu",
                  mean() / 1e3,
                  static_cast<double>(percentile(0.5)) / 1e3,
                  static_cast<double>(percentile(0.9)) / 1e3,
                  static_cast<double>(percentile(0.99)) / 1e3,
                  static_cast<double>(percentile(0.999)) / 1e3,
                  static_cast<double>(max()) / 1e3,
                  static_cast<unsigned long long>(count_));
    return buf;
}

}  // namespace prism
