#include "common/telemetry.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace prism::telemetry {

// ---------------------------------------------------------------------
// TelemetrySample lookups
// ---------------------------------------------------------------------

uint64_t
TelemetrySample::counterDelta(std::string_view name) const
{
    const auto it = std::lower_bound(
        counters.begin(), counters.end(), name,
        [](const CounterPoint &p, std::string_view n) {
            return p.name < n;
        });
    return (it != counters.end() && it->name == name) ? it->delta : 0;
}

double
TelemetrySample::counterRate(std::string_view name) const
{
    const double dt = dtSeconds();
    if (dt <= 0.0)
        return 0.0;
    return static_cast<double>(counterDelta(name)) / dt;
}

int64_t
TelemetrySample::gauge(std::string_view name) const
{
    const auto it = std::lower_bound(
        gauges.begin(), gauges.end(), name,
        [](const GaugePoint &p, std::string_view n) {
            return p.name < n;
        });
    return (it != gauges.end() && it->name == name) ? it->value : 0;
}

// ---------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------

Telemetry &
Telemetry::global()
{
    static Telemetry *g = new Telemetry();  // never destroyed
    return *g;
}

uint64_t
Telemetry::now() const
{
    uint64_t (*fn)() = clock_.load(std::memory_order_acquire);
    return fn != nullptr ? fn() : nowNs();
}

void
Telemetry::setClockForTest(uint64_t (*clock_fn)())
{
    clock_.store(clock_fn, std::memory_order_release);
}

void
Telemetry::setCapacity(size_t windows)
{
    std::lock_guard<std::mutex> lock(mu_);
    capacity_ = windows < 2 ? 2 : windows;
    while (ring_.size() > capacity_)
        ring_.pop_front();
}

size_t
Telemetry::capacity() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return capacity_;
}

size_t
Telemetry::sampleCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return ring_.size();
}

int
Telemetry::addProbe(std::function<void()> fn)
{
    std::lock_guard<std::mutex> lock(mu_);
    const int id = next_probe_id_++;
    probes_.emplace(id, std::move(fn));
    return id;
}

void
Telemetry::removeProbe(int id)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        probes_.erase(id);
    }
    // Barrier: a tick in progress copied the probe list before the
    // erase; waiting for sample_mu_ guarantees that by the time we
    // return, no tick can still be running the removed probe — so the
    // caller may safely tear down whatever the probe reads.
    std::lock_guard<std::mutex> tick(sample_mu_);
}

void
Telemetry::clear()
{
    std::lock_guard<std::mutex> tick(sample_mu_);
    std::lock_guard<std::mutex> lock(mu_);
    ring_.clear();
    has_prev_ = false;
    next_seq_ = 0;
}

namespace {

/**
 * "sim.ssd.<n>.<field>" → device index, or -1. Per-device metrics are
 * emitted by sim::SsdDevice; telemetry derives device attribution from
 * them by name so common/ stays independent of sim/.
 */
int
deviceIndexOf(std::string_view name, std::string_view *field)
{
    constexpr std::string_view kPrefix = "sim.ssd.";
    if (name.substr(0, kPrefix.size()) != kPrefix)
        return -1;
    std::string_view rest = name.substr(kPrefix.size());
    size_t i = 0;
    int dev = 0;
    while (i < rest.size() && rest[i] >= '0' && rest[i] <= '9') {
        dev = dev * 10 + (rest[i] - '0');
        i++;
    }
    if (i == 0 || i >= rest.size() || rest[i] != '.')
        return -1;
    *field = rest.substr(i + 1);
    return dev;
}

}  // namespace

uint64_t
Telemetry::sampleNow()
{
    std::lock_guard<std::mutex> tick(sample_mu_);

    // Let derived-occupancy publishers refresh their gauges, and push
    // the tracer's own gauges, before the snapshot that reads them.
    std::vector<std::function<void()>> probes;
    {
        std::lock_guard<std::mutex> lock(mu_);
        probes.reserve(probes_.size());
        for (auto &[id, fn] : probes_)
            probes.push_back(fn);
    }
    for (auto &fn : probes)
        fn();
    trace::TraceRegistry::global().publishStats();

    const uint64_t t = now();
    stats::StatsSnapshot snap = stats::StatsRegistry::global().snapshot();
    std::array<uint64_t, trace::kNumLayers> layers{};
    for (size_t l = 0; l < trace::kNumLayers; l++)
        layers[l] = trace::layerBusyNs(l);

    if (!has_prev_) {
        prev_ = std::move(snap);
        prev_t_ns_ = t;
        prev_layer_ = layers;
        has_prev_ = true;
        std::lock_guard<std::mutex> lock(mu_);
        return ring_.size();
    }

    TelemetrySample s;
    s.t0_ns = prev_t_ns_;
    s.t1_ns = t;
    const uint64_t dt_ns = s.t1_ns > s.t0_ns ? s.t1_ns - s.t0_ns : 0;

    std::map<int, DevicePoint> devs;
    for (const auto &m : snap.metrics) {
        switch (m.type) {
          case stats::MetricType::kCounter: {
            const uint64_t before = prev_.counter(m.name);
            const uint64_t delta =
                m.counter >= before ? m.counter - before : 0;
            s.counters.push_back(CounterPoint{m.name, delta});
            std::string_view field;
            const int dev = deviceIndexOf(m.name, &field);
            if (dev >= 0) {
                DevicePoint &d = devs[dev];
                if (field == "bytes_read")
                    d.read_bytes = delta;
                else if (field == "bytes_written")
                    d.written_bytes = delta;
                else if (field == "busy_ns" && dt_ns > 0) {
                    const int64_t ch = snap.gauge(
                        "sim.ssd." + std::to_string(dev) + ".channels");
                    d.util = static_cast<double>(delta) /
                             (static_cast<double>(dt_ns) *
                              static_cast<double>(ch > 0 ? ch : 1));
                }
            }
            break;
          }
          case stats::MetricType::kGauge:
            s.gauges.push_back(GaugePoint{m.name, m.gauge});
            break;
          case stats::MetricType::kHistogram: {
            const Histogram h = snap.histogramDelta(prev_, m.name);
            HistPoint p;
            p.name = m.name;
            p.count = h.count();
            p.mean = h.mean();
            p.p50 = h.percentile(0.5);
            p.p99 = h.percentile(0.99);
            p.max = h.max();
            s.hists.push_back(std::move(p));
            break;
          }
        }
    }
    for (auto &[dev, d] : devs) {
        d.name = "ssd" + std::to_string(dev);
        s.devices.push_back(std::move(d));
    }
    for (size_t l = 0; l < trace::kNumLayers; l++) {
        s.layer_busy_ns[l] = layers[l] >= prev_layer_[l]
                                 ? layers[l] - prev_layer_[l]
                                 : 0;
    }

    prev_ = std::move(snap);
    prev_t_ns_ = t;
    prev_layer_ = layers;

    std::lock_guard<std::mutex> lock(mu_);
    s.seq = next_seq_++;
    ring_.push_back(std::move(s));
    while (ring_.size() > capacity_)
        ring_.pop_front();
    return ring_.size();
}

std::vector<TelemetrySample>
Telemetry::series() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return std::vector<TelemetrySample>(ring_.begin(), ring_.end());
}

// ---------------------------------------------------------------------
// Sampler thread
// ---------------------------------------------------------------------

bool
Telemetry::start(uint64_t interval_ms)
{
    std::lock_guard<std::mutex> ctl(ctl_mu_);
    if (running_.load(std::memory_order_acquire))
        return false;
    interval_ms_.store(interval_ms < 1 ? 1 : interval_ms,
                       std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(run_mu_);
        stop_requested_ = false;
    }
    running_.store(true, std::memory_order_release);
    sampler_ = std::thread([this] { samplerLoop(); });
    return true;
}

void
Telemetry::stop()
{
    std::lock_guard<std::mutex> ctl(ctl_mu_);
    if (!running_.load(std::memory_order_acquire))
        return;
    {
        std::lock_guard<std::mutex> lock(run_mu_);
        stop_requested_ = true;
    }
    run_cv_.notify_all();
    if (sampler_.joinable())
        sampler_.join();
    running_.store(false, std::memory_order_release);
}

void
Telemetry::samplerLoop()
{
    trace::TraceRegistry::global().setThreadName("telemetry-sampler");
    sampleNow();  // prime the baseline at thread start
    while (true) {
        const auto ms = std::chrono::milliseconds(
            interval_ms_.load(std::memory_order_relaxed));
        {
            std::unique_lock<std::mutex> lock(run_mu_);
            if (run_cv_.wait_for(lock, ms,
                                 [this] { return stop_requested_; }))
                break;
        }
        sampleNow();
    }
    sampleNow();  // close the final partial window
}

// ---------------------------------------------------------------------
// JSON export
// ---------------------------------------------------------------------

namespace {

void
appendEscaped(std::string &out, const std::string &s)
{
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
}

void
appendKey(std::string &out, const std::string &name, bool &first)
{
    if (!first)
        out += ",";
    first = false;
    out += "\"";
    appendEscaped(out, name);
    out += "\":";
}

template <typename T, typename Fmt>
void
appendArray(std::string &out, const std::vector<TelemetrySample> &ss,
            T getter, Fmt fmt)
{
    out += "[";
    for (size_t i = 0; i < ss.size(); i++) {
        if (i != 0)
            out += ",";
        out += fmt(getter(ss[i]));
    }
    out += "]";
}

std::string
fmtU64(uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    return buf;
}

std::string
fmtI64(int64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
    return buf;
}

std::string
fmtDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

}  // namespace

std::string
Telemetry::exportSeriesJson() const
{
    const std::vector<TelemetrySample> ss = series();
    const uint64_t base_ns = ss.empty() ? 0 : ss.front().t0_ns;

    std::string out;
    out.reserve(1 << 16);
    out += "{\"schema\":\"prism.telemetry.v1\"";
    out += ",\"interval_ms\":" + fmtU64(intervalMs());
    out += ",\"samples\":" + fmtU64(ss.size());
    out += ",\"t0_ns\":" + fmtU64(base_ns);
    out += ",\"t_s\":";
    appendArray(out, ss,
                [&](const TelemetrySample &s) {
                    return static_cast<double>(s.t1_ns - base_ns) / 1e9;
                },
                fmtDouble);
    out += ",\"dt_s\":";
    appendArray(out, ss,
                [](const TelemetrySample &s) { return s.dtSeconds(); },
                fmtDouble);

    // Union of names per section: metrics can register mid-run, so
    // early windows pad missing series with 0.
    auto namesOf = [&](auto member) {
        std::vector<std::string> names;
        for (const auto &s : ss)
            for (const auto &p : s.*member)
                names.push_back(p.name);
        std::sort(names.begin(), names.end());
        names.erase(std::unique(names.begin(), names.end()),
                    names.end());
        return names;
    };

    out += ",\"counters\":{";
    bool first = true;
    for (const std::string &n : namesOf(&TelemetrySample::counters)) {
        appendKey(out, n, first);
        appendArray(out, ss,
                    [&](const TelemetrySample &s) {
                        return s.counterDelta(n);
                    },
                    fmtU64);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const std::string &n : namesOf(&TelemetrySample::gauges)) {
        appendKey(out, n, first);
        appendArray(out, ss,
                    [&](const TelemetrySample &s) { return s.gauge(n); },
                    fmtI64);
    }

    out += "},\"histograms\":{";
    first = true;
    for (const std::string &n : namesOf(&TelemetrySample::hists)) {
        auto histOf = [&](const TelemetrySample &s) -> const HistPoint * {
            const auto it = std::lower_bound(
                s.hists.begin(), s.hists.end(), n,
                [](const HistPoint &p, const std::string &nm) {
                    return p.name < nm;
                });
            return (it != s.hists.end() && it->name == n) ? &*it
                                                          : nullptr;
        };
        appendKey(out, n, first);
        out += "{\"count\":";
        appendArray(out, ss,
                    [&](const TelemetrySample &s) {
                        const HistPoint *p = histOf(s);
                        return p != nullptr ? p->count : 0;
                    },
                    fmtU64);
        out += ",\"mean\":";
        appendArray(out, ss,
                    [&](const TelemetrySample &s) {
                        const HistPoint *p = histOf(s);
                        return p != nullptr ? p->mean : 0.0;
                    },
                    fmtDouble);
        out += ",\"p50\":";
        appendArray(out, ss,
                    [&](const TelemetrySample &s) {
                        const HistPoint *p = histOf(s);
                        return p != nullptr ? p->p50 : 0;
                    },
                    fmtU64);
        out += ",\"p99\":";
        appendArray(out, ss,
                    [&](const TelemetrySample &s) {
                        const HistPoint *p = histOf(s);
                        return p != nullptr ? p->p99 : 0;
                    },
                    fmtU64);
        out += ",\"max\":";
        appendArray(out, ss,
                    [&](const TelemetrySample &s) {
                        const HistPoint *p = histOf(s);
                        return p != nullptr ? p->max : 0;
                    },
                    fmtU64);
        out += "}";
    }

    out += "},\"layers_busy_ns\":{";
    first = true;
    for (size_t l = 0; l < trace::kNumLayers; l++) {
        appendKey(out, trace::layerName(l), first);
        appendArray(out, ss,
                    [&](const TelemetrySample &s) {
                        return s.layer_busy_ns[l];
                    },
                    fmtU64);
    }

    out += "},\"devices\":{";
    first = true;
    std::vector<std::string> dev_names;
    for (const auto &s : ss)
        for (const auto &d : s.devices)
            dev_names.push_back(d.name);
    std::sort(dev_names.begin(), dev_names.end());
    dev_names.erase(std::unique(dev_names.begin(), dev_names.end()),
                    dev_names.end());
    for (const std::string &n : dev_names) {
        auto devOf = [&](const TelemetrySample &s) -> const DevicePoint * {
            for (const auto &d : s.devices)
                if (d.name == n)
                    return &d;
            return nullptr;
        };
        appendKey(out, n, first);
        out += "{\"read_bytes\":";
        appendArray(out, ss,
                    [&](const TelemetrySample &s) {
                        const DevicePoint *d = devOf(s);
                        return d != nullptr ? d->read_bytes : 0;
                    },
                    fmtU64);
        out += ",\"written_bytes\":";
        appendArray(out, ss,
                    [&](const TelemetrySample &s) {
                        const DevicePoint *d = devOf(s);
                        return d != nullptr ? d->written_bytes : 0;
                    },
                    fmtU64);
        out += ",\"util\":";
        appendArray(out, ss,
                    [&](const TelemetrySample &s) {
                        const DevicePoint *d = devOf(s);
                        return d != nullptr ? d->util : 0.0;
                    },
                    fmtDouble);
        out += "}";
    }
    out += "}}\n";
    return out;
}

bool
Telemetry::exportSeriesJsonToFile(const std::string &path) const
{
    const std::string json = exportSeriesJson();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const size_t n = std::fwrite(json.data(), 1, json.size(), f);
    const bool ok = (n == json.size()) && std::fclose(f) == 0;
    if (n != json.size())
        std::fclose(f);
    return ok;
}

}  // namespace prism::telemetry
