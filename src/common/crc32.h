/**
 * @file
 * CRC32C (Castagnoli) used to protect value records on storage.
 *
 * Uses the SSE4.2 crc32 instruction when available, otherwise a
 * slice-by-1 table. Records written to Value Storage carry a checksum
 * over header identity + payload so that torn or misdirected SSD
 * reads are detected rather than served (readValue / GC / recovery
 * verify it).
 */
#pragma once

#include <cstddef>
#include <cstdint>

namespace prism {

namespace detail {
/** Table-based fallback step (defined in crc32.cc). */
uint32_t crc32cSw(uint32_t crc, const void *data, size_t len);
}  // namespace detail

/** @return CRC32C of @p len bytes, seeded with @p crc (0 to start). */
uint32_t crc32c(uint32_t crc, const void *data, size_t len);

/** Convenience: checksum of a buffer from scratch. */
inline uint32_t
crc32c(const void *data, size_t len)
{
    return crc32c(0, data, len);
}

}  // namespace prism
