#include "common/log.h"

#include <atomic>
#include <cstring>
#include <ctime>
#include <deque>
#include <mutex>

#include "common/logging.h"
#include "common/stats.h"
#include "common/thread_util.h"
#include "common/token_bucket.h"

namespace prism::log {

const char *
levelName(Level l)
{
    switch (l) {
      case Level::kDebug: return "debug";
      case Level::kInfo: return "info";
      case Level::kWarn: return "warn";
      case Level::kError: return "error";
      case Level::kOff: return "off";
    }
    return "?";
}

Level
parseLevel(const char *s, Level fallback)
{
    if (s == nullptr)
        return fallback;
    if (std::strcmp(s, "debug") == 0) return Level::kDebug;
    if (std::strcmp(s, "info") == 0) return Level::kInfo;
    if (std::strcmp(s, "warn") == 0 ||
        std::strcmp(s, "warning") == 0) return Level::kWarn;
    if (std::strcmp(s, "error") == 0) return Level::kError;
    if (std::strcmp(s, "off") == 0 ||
        std::strcmp(s, "none") == 0) return Level::kOff;
    return fallback;
}

namespace detail {

/** One interned call site: identity + its private rate-limit bucket. */
struct Site {
    const char *name;
    const char *file;
    int line;
    int id;
    // Tokens are messages. A site that just came off suppression
    // reports how many lines it dropped in the next emitted one.
    TokenBucket bucket;
    std::atomic<uint64_t> suppressed_since_emit{0};

    Site(const char *name, const char *file, int line, int id,
         double rate, uint64_t burst)
        : name(name), file(file), line(line), id(id),
          bucket(rate, burst)
    {}
};

}  // namespace detail

namespace {

constexpr size_t kTailLines = 256;

void
appendJsonEscaped(std::string &out, const char *s)
{
    for (const char *p = s; *p != '\0'; p++) {
        const unsigned char c = static_cast<unsigned char>(*p);
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
}

}  // namespace

struct Logger::Impl {
    std::atomic<int> level{static_cast<int>(Level::kInfo)};
    std::atomic<bool> json{false};

    // Serializes sink writes and tail pushes; sites register rarely.
    mutable std::mutex io_mu;
    std::FILE *sink = stderr;
    std::deque<std::string> tail;

    mutable std::mutex sites_mu;
    std::deque<detail::Site> sites;  // deque: stable element addresses
    double rate_msgs_per_sec = 10.0;
    uint64_t rate_burst = 20;

    // Counter families, indexed by Level (kDebug..kError).
    stats::Counter *emitted[4];
    stats::Counter *suppressed[4];
};

Logger::Logger()
    : impl_(new Impl)
{
    impl_->level.store(
        static_cast<int>(parseLevel(std::getenv("PRISM_LOG_LEVEL"),
                                    Level::kInfo)),
        std::memory_order_relaxed);
    const char *fmt = std::getenv("PRISM_LOG_FORMAT");
    impl_->json.store(fmt != nullptr && std::strcmp(fmt, "json") == 0,
                      std::memory_order_relaxed);
    auto &reg = stats::StatsRegistry::global();
    for (int i = 0; i < 4; i++) {
        const char *lvl = levelName(static_cast<Level>(i));
        impl_->emitted[i] = &reg.counter(
            std::string("prism.log.emitted.") + lvl, "lines");
        impl_->suppressed[i] = &reg.counter(
            std::string("prism.log.suppressed.") + lvl, "lines");
    }
}

Logger &
Logger::global()
{
    static Logger *g = new Logger;  // leaked: usable during shutdown
    return *g;
}

void
Logger::setLevel(Level l)
{
    impl_->level.store(static_cast<int>(l), std::memory_order_relaxed);
}

Level
Logger::level() const
{
    return static_cast<Level>(
        impl_->level.load(std::memory_order_relaxed));
}

void
Logger::setJson(bool json)
{
    impl_->json.store(json, std::memory_order_relaxed);
}

bool
Logger::json() const
{
    return impl_->json.load(std::memory_order_relaxed);
}

void
Logger::setSink(std::FILE *sink)
{
    std::lock_guard<std::mutex> lock(impl_->io_mu);
    impl_->sink = sink;
}

void
Logger::setRateLimit(double msgs_per_sec, uint64_t burst)
{
    PRISM_CHECK(msgs_per_sec > 0 && burst > 0);
    std::lock_guard<std::mutex> lock(impl_->sites_mu);
    impl_->rate_msgs_per_sec = msgs_per_sec;
    impl_->rate_burst = burst;
}

detail::Site *
Logger::registerSite(const char *site, const char *file, int line)
{
    std::lock_guard<std::mutex> lock(impl_->sites_mu);
    // Intern by *name*: two call sites sharing a site name share one
    // bucket (the name keys rate limiting, not the lexical location).
    // Registration is once per call site, so the scan is cold.
    for (auto &s : impl_->sites)
        if (std::strcmp(s.name, site) == 0)
            return &s;
    impl_->sites.emplace_back(site, file, line,
                              static_cast<int>(impl_->sites.size()),
                              impl_->rate_msgs_per_sec,
                              impl_->rate_burst);
    return &impl_->sites.back();
}

void
Logger::log(detail::Site *site, Level l, const char *fmt, ...)
{
    if (!enabled(l))
        return;
    const int li = static_cast<int>(l);
    if (!site->bucket.tryAcquire(1)) {
        site->suppressed_since_emit.fetch_add(
            1, std::memory_order_relaxed);
        if (li >= 0 && li < 4)
            impl_->suppressed[li]->inc();
        return;
    }
    char msg[1024];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(msg, sizeof(msg), fmt, ap);
    va_end(ap);
    const uint64_t dropped =
        site->suppressed_since_emit.exchange(0,
                                             std::memory_order_relaxed);
    if (dropped > 0) {
        const size_t len = std::strlen(msg);
        std::snprintf(msg + len, sizeof(msg) - len,
                      " (%llu similar suppressed)",
                      static_cast<unsigned long long>(dropped));
    }
    logRaw(l, site->name, msg);
}

void
Logger::logRaw(Level l, const char *site, const char *msg)
{
    const int li = static_cast<int>(l);
    if (li >= 0 && li < 4)
        impl_->emitted[li]->inc();

    // Wall-clock timestamp: ops logs correlate with the outside world,
    // unlike the steady clock the tracer uses.
    std::timespec ts{};
    std::timespec_get(&ts, TIME_UTC);
    std::tm tm{};
    gmtime_r(&ts.tv_sec, &tm);

    std::string line;
    line.reserve(160);
    char buf[96];
    if (json()) {
        std::snprintf(buf, sizeof(buf),
                      "{\"ts\":\"%04d-%02d-%02dT%02d:%02d:%02d.%03ldZ\""
                      ",\"level\":\"%s\",\"site\":\"",
                      tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday,
                      tm.tm_hour, tm.tm_min, tm.tm_sec,
                      ts.tv_nsec / 1000000, levelName(l));
        line += buf;
        appendJsonEscaped(line, site);
        std::snprintf(buf, sizeof(buf), "\",\"tid\":%d,\"msg\":\"",
                      ThreadId::self());
        line += buf;
        appendJsonEscaped(line, msg);
        line += "\"}";
    } else {
        std::snprintf(buf, sizeof(buf),
                      "%04d-%02d-%02dT%02d:%02d:%02d.%03ldZ %-5s [%s] ",
                      tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday,
                      tm.tm_hour, tm.tm_min, tm.tm_sec,
                      ts.tv_nsec / 1000000, levelName(l), site);
        line += buf;
        line += msg;
    }

    std::lock_guard<std::mutex> lock(impl_->io_mu);
    if (impl_->tail.size() >= kTailLines)
        impl_->tail.pop_front();
    impl_->tail.push_back(line);
    if (impl_->sink != nullptr) {
        std::fputs(line.c_str(), impl_->sink);
        std::fputc('\n', impl_->sink);
        std::fflush(impl_->sink);
    }
}

std::vector<std::string>
Logger::tail() const
{
    std::lock_guard<std::mutex> lock(impl_->io_mu);
    return {impl_->tail.begin(), impl_->tail.end()};
}

void
Logger::clearTailForTest()
{
    std::lock_guard<std::mutex> lock(impl_->io_mu);
    impl_->tail.clear();
}

}  // namespace prism::log

namespace prism::detail {

void
checkFailed(const char *expr, const char *file, int line)
{
    char msg[512];
    std::snprintf(msg, sizeof(msg), "PRISM_CHECK failed: %s at %s:%d",
                  expr, file, line);
    log::Logger::global().logRaw(log::Level::kError, "check", msg);
    std::abort();
}

void
fatalMessage(const char *msg)
{
    char line[1100];
    std::snprintf(line, sizeof(line), "fatal: %s", msg);
    log::Logger::global().logRaw(log::Level::kError, "fatal", line);
    std::exit(1);
}

}  // namespace prism::detail
