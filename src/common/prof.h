/**
 * @file
 * prism::prof — continuous in-process profiling (docs/OBSERVABILITY.md,
 * "Profiling").
 *
 * Two independent profilers share this module:
 *
 *  1. A sampling CPU profiler. Profiler::start(hz) arms one POSIX
 *     interval timer per registered thread (timer_create on the
 *     thread's CPU-time clock, SIGEV_THREAD_ID + SIGPROF), so each
 *     thread is sampled per CPU-second it actually burns — idle
 *     threads cost nothing. The async-signal-safe handler walks the
 *     frame-pointer chain out of the interrupted ucontext into a
 *     per-thread lock-free SampleRing (the trace.h per-slot-seqlock
 *     idiom: torn reads are dropped by validation, never UB).
 *     Symbolization (dladdr + __cxa_demangle) happens offline in
 *     collectFolded(), which aggregates samples into collapsed
 *     ("folded") stacks additionally keyed by the tracer's current
 *     layer and span, joining the existing attribution model.
 *     Default off: no timers exist and instrumented code pays one
 *     relaxed load per site.
 *
 *  2. A lock-contention profiler. Timed<M> wraps a Lockable with a
 *     named, interned site; when armed (setLockProfiling) every
 *     acquisition is counted, contended acquisitions record their
 *     wait in a histogram plus a per-site total, and the *holder's*
 *     current span/layer at contention time is attributed into a
 *     bounded per-site table (the poor man's holder stack — cheap
 *     enough to leave on). Disabled cost: one relaxed load per
 *     lock()/unlock(). Metrics surface as prism.lock.<site>.* in the
 *     stats registry, so /metrics, telemetry and `prism_cli top` see
 *     them for free.
 *
 * Thread lifecycle hooks live in ThreadId::self() (registration) and
 * its TLS destructor (timer teardown before the dense id is recycled),
 * so adopted ids never inherit a live timer aimed at a dead kernel tid.
 */
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/spinlock.h"
#include "common/stats.h"
#include "common/thread_util.h"
#include "common/trace.h"

namespace prism::prof {

namespace detail {

/** Deepest backtrace a sample keeps (leaf first). */
constexpr size_t kMaxFrames = 28;

/** Words per sample slot: seq, meta, kMaxFrames PCs, pad. */
constexpr size_t kSlotWords = 32;

/** Lock-contention arming flag; one relaxed load per lock site. */
extern std::atomic<bool> g_lock_prof;

inline bool
lockProfEnabled()
{
    return g_lock_prof.load(std::memory_order_relaxed);
}

/**
 * ThreadId lifecycle hooks (called from thread_util.cc). Registration
 * runs on the thread itself: it records the kernel tid and the stack
 * bounds the signal handler validates frame pointers against, and
 * self-arms a timer when profiling is already running. Exit deletes
 * the thread's timer *before* the dense id returns to the free list.
 */
void onThreadRegistered(int tid);
void onThreadExit(int tid);

}  // namespace detail

/**
 * One thread's stack-sample ring. Single writer — the owning thread's
 * SIGPROF handler — publishing via a per-slot seqlock of relaxed
 * atomics; any thread may snapshot concurrently. Never freed once
 * created (threads adopting a recycled dense id adopt the ring, whose
 * head keeps counting monotonically — compare head deltas, not
 * absolute values).
 */
class SampleRing {
  public:
    explicit SampleRing(size_t capacity_samples);

    struct Sample {
        uint8_t layer = 0;       ///< trace::Layer at capture time
        uint32_t leaf_id = 0;    ///< innermost open span name id (0 = none)
        uint32_t nframes = 0;
        std::array<uint64_t, detail::kMaxFrames> frames{};  ///< leaf first
    };

    /** Owner-signal-handler only; async-signal-safe. */
    void emit(uint8_t layer, uint32_t leaf_id, const uint64_t *frames,
              uint32_t nframes);

    /** Monotonic count of samples ever emitted. */
    uint64_t head() const { return head_.load(std::memory_order_acquire); }

    size_t capacity() const { return capacity_; }

    /**
     * Copy out samples with index >= @p since (clamped to what the ring
     * still holds), oldest first. Mid-overwrite slots are dropped via
     * sequence validation.
     */
    void snapshot(uint64_t since, std::vector<Sample> &out) const;

  private:
    size_t capacity_;  ///< power of two
    size_t mask_;
    std::unique_ptr<std::atomic<uint64_t>[]> words_;
    std::atomic<uint64_t> head_{0};
};

/**
 * Process-wide sampling CPU profiler. start()/stop() are idempotent
 * and thread-safe; while running, every registered thread (current and
 * future) carries a CPU-time interval timer firing SIGPROF at @p hz.
 */
class Profiler {
  public:
    static Profiler &global();

    Profiler(const Profiler &) = delete;
    Profiler &operator=(const Profiler &) = delete;

    /**
     * Arm sampling at @p hz (clamped to [1, 1000]). Returns true when
     * this call transitioned the profiler off->on (the caller then
     * owns the matching stop()); false if it was already running or
     * hz <= 0. Also arms the tracer's layer tracking and the
     * lock-contention profiler.
     */
    bool start(int hz);

    /** Disarm every timer. Samples stay collectable. Idempotent. */
    void stop();

    bool running() const {
        return running_.load(std::memory_order_acquire);
    }

    /** Sampling rate while running, else 0. */
    int hz() const { return hz_.load(std::memory_order_relaxed); }

    /** Total samples ever captured across all threads. */
    uint64_t samplesTaken() const;

    /** Samples overwritten before any collection could see them. */
    uint64_t samplesDropped() const;

    /** Number of threads currently carrying an armed timer. */
    int threadsArmed() const;

    /** Per-thread ring head positions, for delta collection. */
    using Marks = std::array<uint64_t, ThreadId::kMaxThreads>;
    Marks mark() const;

    /**
     * Aggregate (and symbolize) every sample newer than @p since (all
     * samples when null) into collapsed-stack text: one line per
     * distinct stack, `layer;span:<name>;root;...;leaf COUNT`, plus
     * `#`-prefixed summary comments (samples, symbolized fraction).
     * Offline-only: allocates, takes locks, calls dladdr.
     */
    std::string collectFolded(const Marks *since = nullptr) const;

    /**
     * Blocking convenience for the ops endpoint / CLI: ensure sampling
     * at @p hz (starting if needed), sleep @p seconds, collect the
     * window's samples, and stop again if this call started it.
     */
    std::string profileForWindow(int hz, double seconds);

    /** Ring capacity (samples) for rings created after this call. */
    void setRingCapacity(size_t samples);

    /** Push prism.prof.* gauges into the global stats registry. */
    void publishStats() const;

  private:
    Profiler() = default;

    std::atomic<bool> running_{false};
    std::atomic<int> hz_{0};
};

/**
 * Resolve an effective sampling rate from an options value: > 0 wins,
 * 0 defers to $PRISM_PROF_HZ, and 0 comes back when neither asks for
 * sampling.
 */
int resolveHz(int option_value);

// ---------------------------------------------------------------------
// Lock-contention profiler
// ---------------------------------------------------------------------

/**
 * One named lock site (e.g. "pwb.pass"); many lock instances may share
 * a site. Interned once; the stats live in the global registry as
 * prism.lock.<site>.{acquisitions,contended,wait_ns_total} counters
 * plus a prism.lock.<site>.wait_ns histogram.
 */
struct LockSite {
    static constexpr size_t kHolderBuckets = 16;

    struct HolderBucket {
        /** Packed holder context: leaf span id << 8 | layer; 0 = empty. */
        std::atomic<uint64_t> key{0};
        std::atomic<uint64_t> count{0};
        std::atomic<uint64_t> wait_ns{0};
    };

    std::string name;
    stats::Counter *acquisitions = nullptr;
    stats::Counter *contended = nullptr;
    stats::Counter *wait_ns_total = nullptr;
    stats::LatencyStat *wait_ns = nullptr;
    /** Who held the lock when waiters contended (bounded; overflow
     *  lands in a catch-all bucket keyed 1). */
    std::array<HolderBucket, kHolderBuckets> holders;

    /** Attribute @p wait_ns_delta to holder context @p key. */
    void noteHolder(uint64_t key, uint64_t wait_ns_delta);
};

/** Find-or-create the site named @p name (stable pointer, never freed). */
LockSite *internLockSite(const char *name);

/**
 * Arm/disarm contention recording at every Timed site (one process-wide
 * flag). Arming also enables the tracer's layer tracking so holder
 * contexts carry span/layer identity. Profiler::start()/stop() call
 * this; tests and the CLI may too.
 */
void setLockProfiling(bool on);
bool lockProfilingEnabled();

/**
 * Render the per-site holder-attribution tables as collapsed stacks
 * weighted by wait-microseconds: `lock:<site>;<holder> WAIT_US`, with
 * `#` summary comments per site (acquisitions, contended, total wait).
 * Feed to scripts/flamegraph.py like a CPU profile.
 */
std::string renderContentionFolded();

namespace detail {

/** Packed holder context of the calling thread: leaf span << 8 | layer. */
inline uint64_t
currentHolderCtx()
{
    return (static_cast<uint64_t>(trace::detail::t_cur_leaf) << 8) |
           static_cast<uint64_t>(trace::detail::t_cur_layer);
}

}  // namespace detail

/**
 * Lockable wrapper measuring contention at a named site. Fast path
 * when disarmed: one relaxed load, then the wrapped lock — no
 * counters, no clock reads. Armed: uncontended acquisitions (try_lock
 * wins) cost one sharded counter add; contended ones add two clock
 * reads, a histogram record, and holder attribution.
 *
 * M must be Lockable (lock/try_lock/unlock). Works with
 * std::unique_lock and std::condition_variable_any.
 */
template <class M>
class Timed {
  public:
    /** Site interned lazily on first armed use. */
    explicit Timed(const char *site_name) : site_name_(site_name) {}

    /** Pre-interned site (for function-local locks on hot paths). */
    explicit Timed(LockSite *site) : site_(site) {}

    Timed(const Timed &) = delete;
    Timed &operator=(const Timed &) = delete;

    void
    lock()
    {
        if (!detail::lockProfEnabled()) {
            m_.lock();
            return;
        }
        lockProfiled();
    }

    bool
    try_lock()  // NOLINT: std Lockable spelling
    {
        if (!detail::lockProfEnabled())
            return m_.try_lock();
        if (m_.try_lock()) {
            site().acquisitions->inc();
            holder_.store(detail::currentHolderCtx(),
                          std::memory_order_relaxed);
            return true;
        }
        return false;
    }

    void
    unlock()
    {
        if (detail::lockProfEnabled())
            holder_.store(0, std::memory_order_relaxed);
        m_.unlock();
    }

    /** The wrapped lock (tests; use sparingly). */
    M &underlying() { return m_; }

  private:
    void
    lockProfiled()
    {
        LockSite &s = site();
        if (m_.try_lock()) {
            s.acquisitions->inc();
            holder_.store(detail::currentHolderCtx(),
                          std::memory_order_relaxed);
            return;
        }
        // Contended: read who holds it *before* blocking, then charge
        // the wait to that holder context once we own the lock.
        const uint64_t holder = holder_.load(std::memory_order_relaxed);
        const uint64_t t0 = nowNs();
        m_.lock();
        const uint64_t wait = nowNs() - t0;
        s.acquisitions->inc();
        s.contended->inc();
        s.wait_ns_total->add(wait);
        s.wait_ns->record(wait);
        s.noteHolder(holder, wait);
        holder_.store(detail::currentHolderCtx(),
                      std::memory_order_relaxed);
    }

    LockSite &
    site()
    {
        LockSite *s = site_.load(std::memory_order_acquire);
        if (s == nullptr) {
            s = internLockSite(site_name_);
            site_.store(s, std::memory_order_release);
        }
        return *s;
    }

    std::atomic<LockSite *> site_{nullptr};
    const char *site_name_ = "";
    /** Holder context while locked and armed (0 = free/unknown). */
    std::atomic<uint64_t> holder_{0};
    M m_;
};

using TimedMutex = Timed<std::mutex>;
using TimedTicketLock = Timed<TicketLock>;

}  // namespace prism::prof
