/**
 * @file
 * prism::telemetry — continuous windowed time-series sampling on top of
 * the stats registry, with per-subsystem resource attribution.
 *
 * PR 1's registry answers "what are the totals now" and PR 3's tracer
 * answers "what did this operation do"; neither answers "how did rates
 * evolve over the run" or "who was using the CPU and the devices during
 * that stall". This module does: a sampler (its own thread, or driven
 * manually by tests/CLI) periodically snapshots the registry and folds
 * each window into a fixed-capacity ring of *interval* records:
 *
 *  - every counter becomes a per-window delta (a rate series),
 *  - every gauge/occupancy (PWB ring fill, SVC bytes, SSD queue depth,
 *    bg-pool backlog) becomes a time series of instantaneous values,
 *  - every latency histogram becomes an interval summary (only the
 *    samples recorded inside the window, via Histogram::subtract),
 *  - tracer span self-time becomes per-layer busy-ns
 *    (core/pwb/svc/vs/ssd/bg — populated while tracing is enabled),
 *  - per-device `sim.ssd.<n>.*` counters become per-device read/write
 *    byte deltas and a utilization estimate
 *    (busy ÷ window × channels).
 *
 * The ring is bounded (`setCapacity`, default 600 windows ≈ 1 minute at
 * the 100 ms default interval) and sampling is entirely read-side: the
 * hot paths of the instrumented engines are untouched, so the sampler's
 * cost is one registry snapshot per interval regardless of op rate.
 *
 * Consumers: `PrismDb::telemetry()` (started via
 * `PrismOptions::telemetry_interval_ms`), every bench's
 * `--telemetry=<file>` flag, `prism_cli top`, and
 * `scripts/telemetry_report.py` which renders the exported JSON
 * (`exportSeriesJson[ToFile]`) into a self-contained HTML report. See
 * docs/OBSERVABILITY.md, "Time series & resource attribution".
 */
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "common/trace.h"

namespace prism::telemetry {

/** One counter's activity inside a window. */
struct CounterPoint {
    std::string name;
    uint64_t delta = 0;  ///< counter increase across the window
};

/** One gauge's value at the window's end. */
struct GaugePoint {
    std::string name;
    int64_t value = 0;
};

/** One latency histogram's interval summary (window samples only). */
struct HistPoint {
    std::string name;
    uint64_t count = 0;
    double mean = 0.0;
    uint64_t p50 = 0;
    uint64_t p99 = 0;
    uint64_t max = 0;
};

/** One simulated device's activity inside a window. */
struct DevicePoint {
    std::string name;            ///< "ssd0", "ssd1", ...
    uint64_t read_bytes = 0;
    uint64_t written_bytes = 0;
    double util = 0.0;  ///< busy-ns ÷ (window × channels), may round >1
};

/** One sampling window: everything that happened between two ticks. */
struct TelemetrySample {
    uint64_t seq = 0;    ///< monotonic window number (survives wrap)
    uint64_t t0_ns = 0;  ///< window start (previous tick)
    uint64_t t1_ns = 0;  ///< window end (this tick)

    std::vector<CounterPoint> counters;  ///< registry order (sorted)
    std::vector<GaugePoint> gauges;
    std::vector<HistPoint> hists;

    /** Tracer self-time per layer inside this window (trace::Layer). */
    std::array<uint64_t, trace::kNumLayers> layer_busy_ns{};

    std::vector<DevicePoint> devices;

    double dtSeconds() const {
        return static_cast<double>(t1_ns - t0_ns) / 1e9;
    }

    /** Counter delta by exact name; 0 when absent. */
    uint64_t counterDelta(std::string_view name) const;

    /** Counter delta ÷ window length, per second; 0 for empty window. */
    double counterRate(std::string_view name) const;

    /** Gauge value by exact name; 0 when absent. */
    int64_t gauge(std::string_view name) const;
};

/**
 * The process-wide sampler + ring. All methods are thread-safe; the
 * sampler thread is off by default and costs nothing until start().
 */
class Telemetry {
  public:
    static Telemetry &global();

    Telemetry(const Telemetry &) = delete;
    Telemetry &operator=(const Telemetry &) = delete;

    /** Ring capacity in windows (min 2). Applies immediately; shrinking
     *  drops the oldest windows. */
    void setCapacity(size_t windows);
    size_t capacity() const;

    /**
     * Start the sampler thread at @p interval_ms (min 1). Idempotent:
     * returns false (and changes nothing) if already running. The
     * first tick primes the baseline; windows appear from the second
     * tick on.
     */
    bool start(uint64_t interval_ms);

    /** Stop and join the sampler thread. Idempotent. The recorded
     *  series is kept (export after stop is the normal pattern). */
    void stop();

    bool running() const { return running_.load(std::memory_order_acquire); }
    uint64_t intervalMs() const {
        return interval_ms_.load(std::memory_order_relaxed);
    }

    /**
     * Take one sample now on the calling thread (the sampler thread's
     * tick, also the manual-drive path for tests and `prism_cli top`).
     * The first call after clear()/construction only primes the
     * baseline and records nothing. Returns the number of windows
     * recorded so far.
     */
    uint64_t sampleNow();

    /** Drop the series and the baseline (capacity/probes survive). */
    void clear();

    /**
     * Register a hook invoked at the start of every sample tick —
     * the publish point for occupancy gauges that are derived rather
     * than maintained (PrismDb uses this for PWB fill / SVC bytes).
     * Returns an id for removeProbe. The hook must not call back into
     * Telemetry.
     */
    int addProbe(std::function<void()> fn);

    /** Unregister a probe. Blocks until any in-flight tick is done, so
     *  on return the probe will never run again (safe-teardown). */
    void removeProbe(int id);

    /** Copy of the ring, oldest window first. */
    std::vector<TelemetrySample> series() const;

    /** Number of windows currently in the ring. */
    size_t sampleCount() const;

    /**
     * Columnar JSON export of the whole ring (schema
     * "prism.telemetry.v1"; see docs/OBSERVABILITY.md). Counter deltas
     * are exact integers; rates are delta ÷ dt_s client-side.
     */
    std::string exportSeriesJson() const;

    /** exportSeriesJson() to a file; returns false on I/O error. */
    bool exportSeriesJsonToFile(const std::string &path) const;

    /** Inject a deterministic clock (tests). nullptr restores nowNs. */
    void setClockForTest(uint64_t (*clock_fn)());

  private:
    Telemetry() = default;

    void samplerLoop();
    uint64_t now() const;

    /** Serializes whole sample ticks (manual vs sampler thread). */
    mutable std::mutex sample_mu_;
    /** Guards ring_, probes_, capacity_ (readers vs the tick). */
    mutable std::mutex mu_;

    std::deque<TelemetrySample> ring_;
    size_t capacity_ = 600;
    uint64_t next_seq_ = 0;

    // Baseline for the next window (sample_mu_).
    bool has_prev_ = false;
    uint64_t prev_t_ns_ = 0;
    stats::StatsSnapshot prev_;
    std::array<uint64_t, trace::kNumLayers> prev_layer_{};

    std::map<int, std::function<void()>> probes_;
    int next_probe_id_ = 1;

    std::atomic<uint64_t (*)()> clock_{nullptr};

    // Sampler thread lifecycle.
    std::mutex ctl_mu_;  ///< serializes start()/stop()
    std::thread sampler_;
    std::mutex run_mu_;
    std::condition_variable run_cv_;
    bool stop_requested_ = false;
    std::atomic<bool> running_{false};
    std::atomic<uint64_t> interval_ms_{0};
};

}  // namespace prism::telemetry
