/**
 * @file
 * Pseudo-random generators used by workload generation and the stores.
 *
 * Includes the YCSB request distributions: uniform, Zipfian (Gray et al.'s
 * rejection-free incremental method, as used by the YCSB reference
 * implementation), scrambled Zipfian (hashes the rank so that hot keys are
 * spread over the key space), and "latest" (Workload D).
 */
#pragma once

#include <cstdint>

namespace prism {

/** xorshift128+ generator: fast, decent quality, per-thread friendly. */
class Xorshift {
  public:
    explicit Xorshift(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** @return next raw 64-bit value. */
    uint64_t next();

    /** @return uniform value in [0, bound). @p bound must be non-zero. */
    uint64_t nextUniform(uint64_t bound);

    /** @return uniform double in [0, 1). */
    double nextDouble();

  private:
    uint64_t s0_, s1_;
};

/** Stateless 64-bit finalizer (splitmix64) used for key scrambling. */
uint64_t hash64(uint64_t x);

/**
 * Zipfian distribution over ranks [0, n). Rank 0 is the most popular item.
 *
 * Uses the closed-form incremental method from the YCSB generator, which
 * supports growing @p n without recomputing the full harmonic sum.
 */
class ZipfianGenerator {
  public:
    /**
     * @param n     number of items.
     * @param theta Zipfian constant (YCSB default 0.99).
     * @param seed  RNG seed.
     */
    ZipfianGenerator(uint64_t n, double theta, uint64_t seed = 1);

    /** @return a rank in [0, n) with Zipfian popularity. */
    uint64_t next();

    uint64_t itemCount() const { return n_; }
    double theta() const { return theta_; }

  private:
    static double zeta(uint64_t n, double theta);

    uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
    double zeta2theta_;
    Xorshift rng_;
};

/**
 * Scrambled Zipfian: Zipfian ranks hashed over the item space so that the
 * popular items are scattered, matching YCSB's ScrambledZipfianGenerator.
 */
class ScrambledZipfian {
  public:
    ScrambledZipfian(uint64_t n, double theta, uint64_t seed = 1);

    /** @return an item index in [0, n). */
    uint64_t next();

  private:
    ZipfianGenerator zipf_;
    uint64_t n_;
};

/**
 * "Latest" distribution (YCSB Workload D): most requests target recently
 * inserted items. Implemented as Zipfian over recency.
 */
class LatestGenerator {
  public:
    LatestGenerator(uint64_t initial_count, double theta, uint64_t seed = 1);

    /** Note that a new item was inserted (grows the window). */
    void advance() { ++count_; }

    /** @return item index in [0, count), biased towards count-1. */
    uint64_t next();

  private:
    uint64_t count_;
    ZipfianGenerator zipf_;
};

}  // namespace prism
