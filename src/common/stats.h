/**
 * @file
 * prism::stats — a low-overhead process-wide metrics registry.
 *
 * Every engine in this repo (the Prism core, the simulated devices, the
 * pmem layer, and the KVell/LSM baselines) registers named counters,
 * gauges and latency histograms here; benchmarks, tests, prism_cli and
 * the periodic dumper read one consistent snapshot out. The paper's own
 * evaluation depends on exactly these internal counters (WAF inputs for
 * Fig. 12, GC activity for Fig. 17, PWB/SVC hit behaviour for Fig. 15,
 * thread-combining ratios for Fig. 11); docs/OBSERVABILITY.md is the
 * reference table of every metric name.
 *
 * Design constraints:
 *  - The hot path is one relaxed atomic add on a per-thread shard
 *    (Counter::add); aggregation happens on read, never on write.
 *  - Metric objects live for the whole process: registration hands out
 *    stable references, so instrumented code caches a pointer once and
 *    never touches the registry lock again.
 *  - The same name can be requested from many instances (e.g. four
 *    SsdDevices all share "sim.ssd.bytes_written"); they receive the
 *    same Counter and their contributions aggregate naturally.
 *
 * Because the default registry is process-wide, tests and benches that
 * open several stores in one process should compare snapshot *deltas*
 * (StatsSnapshot::counterDelta) rather than absolute values.
 */
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.h"
#include "common/spinlock.h"
#include "common/thread_util.h"

namespace prism::stats {

enum class MetricType { kCounter, kGauge, kHistogram };

/**
 * Monotonic counter, sharded to keep concurrent writers off each
 * other's cache lines. add() is a relaxed fetch_add on the calling
 * thread's shard; value() sums the shards.
 */
class Counter {
  public:
    static constexpr int kShards = 64;  // power of two

    void
    add(uint64_t delta)
    {
        shards_[static_cast<size_t>(ThreadId::self()) & (kShards - 1)]
            .v.fetch_add(delta, std::memory_order_relaxed);
    }

    void inc() { add(1); }

    uint64_t
    value() const
    {
        uint64_t total = 0;
        for (const auto &s : shards_)
            total += s.v.load(std::memory_order_relaxed);
        return total;
    }

  private:
    struct alignas(64) Shard {
        std::atomic<uint64_t> v{0};
    };
    std::array<Shard, kShards> shards_;
};

/**
 * Signed instantaneous value (queue depths, bytes in use). add/sub are
 * relaxed atomic ops on one cell — gauges are updated far less often
 * than counters, so sharding is not worth the read-side complexity of
 * a non-monotonic merge.
 */
class Gauge {
  public:
    void add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
    void sub(int64_t d) { v_.fetch_sub(d, std::memory_order_relaxed); }
    void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
    int64_t value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> v_{0};
};

/**
 * Latency histogram metric: per-shard common::Histogram instances, each
 * guarded by its own (uncontended in the common case) spin lock.
 * record() locks only the calling thread's shard; merged() combines all
 * shards into one Histogram for percentile queries.
 */
class LatencyStat {
  public:
    static constexpr int kShards = 16;  // power of two

    void
    record(uint64_t value)
    {
        Shard &s = shards_[static_cast<size_t>(ThreadId::self()) &
                           (kShards - 1)];
        std::lock_guard<SpinLock> lock(s.mu);
        s.h.record(value);
    }

    /** Fold a pre-merged histogram in (e.g. a driver thread's). */
    void
    mergeFrom(const Histogram &h)
    {
        Shard &s = shards_[static_cast<size_t>(ThreadId::self()) &
                           (kShards - 1)];
        std::lock_guard<SpinLock> lock(s.mu);
        s.h.merge(h);
    }

    Histogram
    merged() const
    {
        Histogram out;
        for (const auto &s : shards_) {
            std::lock_guard<SpinLock> lock(
                const_cast<SpinLock &>(s.mu));
            out.merge(s.h);
        }
        return out;
    }

  private:
    struct alignas(64) Shard {
        SpinLock mu;
        Histogram h;
    };
    std::array<Shard, kShards> shards_;
};

/** One metric's value at snapshot time. */
struct MetricSnapshot {
    std::string name;
    MetricType type = MetricType::kCounter;
    std::string unit;  ///< "bytes", "ops", "ns", ... (documentation only)

    uint64_t counter = 0;  ///< kCounter
    int64_t gauge = 0;     ///< kGauge

    // kHistogram summary.
    uint64_t count = 0;
    double mean = 0.0;
    uint64_t p50 = 0;
    uint64_t p90 = 0;
    uint64_t p99 = 0;
    uint64_t p999 = 0;
    uint64_t max = 0;

    /**
     * kHistogram only: the full merged histogram behind the summary,
     * shared across snapshot copies. Needed to compute *interval*
     * histograms (Histogram::subtract) — percentiles of two absolute
     * snapshots cannot be differenced, buckets can.
     */
    std::shared_ptr<const Histogram> hist;
};

/**
 * A point-in-time copy of every registered metric, sorted by name.
 * Cheap to copy around; renders as aligned text or JSON.
 */
struct StatsSnapshot {
    std::vector<MetricSnapshot> metrics;

    /** Counter value by exact name; 0 when absent. */
    uint64_t counter(std::string_view name) const;

    /** Gauge value by exact name; 0 when absent. */
    int64_t gauge(std::string_view name) const;

    /** Histogram summary by exact name; nullptr when absent. */
    const MetricSnapshot *histogram(std::string_view name) const;

    /**
     * Difference of a counter against an earlier snapshot — the idiom
     * for per-run accounting against the process-wide registry.
     */
    uint64_t counterDelta(const StatsSnapshot &earlier,
                          std::string_view name) const;

    /**
     * Interval histogram against an earlier snapshot: only the samples
     * recorded between the two. Missing in @p earlier → this snapshot's
     * histogram verbatim; missing here → empty histogram.
     */
    Histogram histogramDelta(const StatsSnapshot &earlier,
                             std::string_view name) const;

    /** Aligned human-readable dump, one metric per line. */
    std::string toString() const;

    /** JSON object: {"counters":{...},"gauges":{...},"histograms":{...}} */
    std::string toJson() const;
};

/**
 * Registry of named metrics. Registration is mutex-protected and meant
 * to happen at engine construction; the returned references stay valid
 * for the registry's lifetime (for global(): the process lifetime).
 */
class StatsRegistry {
  public:
    /** The process-wide registry all engines instrument into. */
    static StatsRegistry &global();

    StatsRegistry() = default;
    StatsRegistry(const StatsRegistry &) = delete;
    StatsRegistry &operator=(const StatsRegistry &) = delete;

    /**
     * Find-or-create a counter. Requesting an existing name returns the
     * same object (multi-instance aggregation); @p unit is recorded on
     * first registration only.
     */
    Counter &counter(std::string_view name, std::string_view unit = "");

    Gauge &gauge(std::string_view name, std::string_view unit = "");

    LatencyStat &histogram(std::string_view name,
                           std::string_view unit = "ns");

    /** Copy out every metric, sorted by name. */
    StatsSnapshot snapshot() const;

    /** Number of registered metrics (tests). */
    size_t size() const;

  private:
    struct Entry {
        MetricType type;
        std::string unit;
        std::unique_ptr<Counter> c;
        std::unique_ptr<Gauge> g;
        std::unique_ptr<LatencyStat> h;
    };

    mutable std::mutex mu_;
    std::map<std::string, Entry, std::less<>> metrics_;
};

}  // namespace prism::stats
