/**
 * @file
 * Lightweight status / error-code type used across the Prism code base.
 *
 * We deliberately avoid exceptions on hot paths (reads and writes in a
 * key-value store are latency critical); operations report success or a
 * small closed set of failure categories through Status.
 */
#pragma once

#include <string>
#include <string_view>
#include <utility>

namespace prism {

/** Closed set of error categories a store operation can produce. */
enum class StatusCode {
    kOk = 0,
    kNotFound,       ///< Key does not exist (or was deleted).
    kAlreadyExists,  ///< Insert of a key that is already present.
    kOutOfSpace,     ///< Device/buffer capacity exhausted.
    kIoError,        ///< Simulated device reported a failure.
    kCorruption,     ///< Consistency check failed (bad coupling, CRC, ...).
    kInvalidArgument,
    kAborted,        ///< Operation lost a race and should be retried.
    kNotSupported,
};

/** Result of an operation: a code plus an optional human-readable detail. */
class Status {
  public:
    Status() : code_(StatusCode::kOk) {}
    explicit Status(StatusCode code, std::string msg = {})
        : code_(code), msg_(std::move(msg)) {}

    static Status ok() { return Status(); }
    static Status notFound(std::string m = {}) {
        return Status(StatusCode::kNotFound, std::move(m));
    }
    static Status alreadyExists(std::string m = {}) {
        return Status(StatusCode::kAlreadyExists, std::move(m));
    }
    static Status outOfSpace(std::string m = {}) {
        return Status(StatusCode::kOutOfSpace, std::move(m));
    }
    static Status ioError(std::string m = {}) {
        return Status(StatusCode::kIoError, std::move(m));
    }
    static Status corruption(std::string m = {}) {
        return Status(StatusCode::kCorruption, std::move(m));
    }
    static Status invalidArgument(std::string m = {}) {
        return Status(StatusCode::kInvalidArgument, std::move(m));
    }
    static Status aborted(std::string m = {}) {
        return Status(StatusCode::kAborted, std::move(m));
    }
    static Status notSupported(std::string m = {}) {
        return Status(StatusCode::kNotSupported, std::move(m));
    }

    bool isOk() const { return code_ == StatusCode::kOk; }
    bool isNotFound() const { return code_ == StatusCode::kNotFound; }
    StatusCode code() const { return code_; }
    std::string_view message() const { return msg_; }

    /** Render as "CODE: message" for logs and test failure output. */
    std::string toString() const {
        std::string s = codeName(code_);
        if (!msg_.empty()) {
            s += ": ";
            s += msg_;
        }
        return s;
    }

    static const char *codeName(StatusCode c) {
        switch (c) {
          case StatusCode::kOk: return "OK";
          case StatusCode::kNotFound: return "NOT_FOUND";
          case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
          case StatusCode::kOutOfSpace: return "OUT_OF_SPACE";
          case StatusCode::kIoError: return "IO_ERROR";
          case StatusCode::kCorruption: return "CORRUPTION";
          case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
          case StatusCode::kAborted: return "ABORTED";
          case StatusCode::kNotSupported: return "NOT_SUPPORTED";
        }
        return "UNKNOWN";
    }

  private:
    StatusCode code_;
    std::string msg_;
};

}  // namespace prism
