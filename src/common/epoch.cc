#include "common/epoch.h"

#include <thread>

#include "common/logging.h"
#include "common/spinlock.h"
#include "common/thread_util.h"

namespace prism {

namespace {

// Registry of live managers. Manager ids are recycled through a bitmap
// so long test runs that create and destroy many stores never exhaust
// the id space; a monotonically increasing generation distinguishes a
// recycled id's new owner from its old one.
SpinLock g_manager_mu;
EpochManager *g_managers[64];
uint64_t g_manager_gens[64];
uint64_t g_next_generation = 1;

struct SlotRef {
    int slot = -1;
    uint64_t gen = 0;
};

// Per-thread cache of this thread's slot in each live manager, released
// at thread exit so thread churn (bench driver phases) cannot exhaust
// the slot table.
struct TlsSlots {
    SlotRef refs[64];

    ~TlsSlots()
    {
        std::lock_guard<SpinLock> lock(g_manager_mu);
        for (int i = 0; i < 64; i++) {
            if (refs[i].slot < 0)
                continue;
            if (g_managers[i] != nullptr &&
                g_manager_gens[i] == refs[i].gen) {
                g_managers[i]->releaseSlotAtThreadExit(refs[i].slot);
            }
            refs[i].slot = -1;
        }
    }
};
thread_local TlsSlots tls_slots;

int
allocManagerId(EpochManager *mgr, uint64_t *gen_out)
{
    std::lock_guard<SpinLock> lock(g_manager_mu);
    for (int i = 0; i < 64; i++) {
        if (g_managers[i] == nullptr) {
            g_managers[i] = mgr;
            g_manager_gens[i] = g_next_generation++;
            *gen_out = g_manager_gens[i];
            return i;
        }
    }
    PRISM_CHECK(false && "too many concurrent EpochManager instances");
    return -1;
}

void
freeManagerId(int id)
{
    std::lock_guard<SpinLock> lock(g_manager_mu);
    g_managers[id] = nullptr;
    g_manager_gens[id] = 0;
}

}  // namespace

EpochManager::EpochManager() : slots_(kMaxThreads)
{
    manager_id_ = allocManagerId(this, &generation_);
}

EpochManager::~EpochManager()
{
    // Run everything still pending; no readers can exist at destruction.
    {
        std::lock_guard<std::mutex> lock(retired_mu_);
        for (auto &r : retired_)
            r.deleter();
        retired_.clear();
    }
    freeManagerId(manager_id_);
}

void
EpochManager::releaseSlotAtThreadExit(int slot)
{
    auto &s = slots_[static_cast<size_t>(slot)];
    s.local_epoch.store(kQuiescent, std::memory_order_release);
    s.in_use.store(false, std::memory_order_release);
}

int
EpochManager::acquireSlot()
{
    for (int i = 0; i < kMaxThreads; i++) {
        bool expected = false;
        if (slots_[static_cast<size_t>(i)].in_use.compare_exchange_strong(
                expected, true, std::memory_order_acq_rel)) {
            return i;
        }
    }
    PRISM_CHECK(false && "EpochManager: too many threads");
    return -1;
}

int
EpochManager::enter()
{
    SlotRef &ref = tls_slots.refs[manager_id_];
    // Validate the cached slot: the manager id may have been recycled by
    // a different manager instance since this thread last touched it.
    if (ref.slot < 0 || ref.gen != generation_) {
        ref.slot = acquireSlot();
        ref.gen = generation_;
    }
    const int slot = ref.slot;
    auto &s = slots_[static_cast<size_t>(slot)];
    // Nested critical sections keep the outermost epoch pin.
    if (s.local_epoch.load(std::memory_order_relaxed) == kQuiescent) {
        // Publish the pin, then re-validate: if the global epoch moved
        // between our read and the pin becoming visible, the pin is
        // stale and would not block reclamation of objects retired in
        // the meantime — retry until read and pin agree.
        while (true) {
            const uint64_t e =
                global_epoch_.load(std::memory_order_acquire);
            s.local_epoch.store(e, std::memory_order_release);
            // Make the pin visible before re-reading the global epoch
            // (and before any shared-structure reads).
            std::atomic_thread_fence(std::memory_order_seq_cst);
            if (global_epoch_.load(std::memory_order_acquire) == e)
                break;
        }
    }
    return slot;
}

void
EpochManager::exit(int slot)
{
    slots_[static_cast<size_t>(slot)].local_epoch.store(
        kQuiescent, std::memory_order_release);
}

void
EpochManager::retire(std::function<void()> deleter)
{
    std::lock_guard<std::mutex> lock(retired_mu_);
    retired_.push_back({std::move(deleter),
                        global_epoch_.load(std::memory_order_acquire)});
}

size_t
EpochManager::tryAdvance()
{
    const uint64_t cur = global_epoch_.load(std::memory_order_acquire);
    // The epoch may advance only when every active reader has observed
    // the current epoch; a reader pinned at an older epoch blocks it.
    for (auto &s : slots_) {
        if (!s.in_use.load(std::memory_order_acquire))
            continue;
        const uint64_t e = s.local_epoch.load(std::memory_order_acquire);
        if (e != kQuiescent && e < cur)
            return 0;
    }
    uint64_t expected = cur;
    global_epoch_.compare_exchange_strong(expected, cur + 1,
                                          std::memory_order_acq_rel);
    const uint64_t now = global_epoch_.load(std::memory_order_acquire);

    // Free retirees that are at least two epochs old.
    std::vector<Retired> ready;
    {
        std::lock_guard<std::mutex> lock(retired_mu_);
        auto it = retired_.begin();
        while (it != retired_.end()) {
            if (it->epoch + 2 <= now) {
                ready.push_back(std::move(*it));
                it = retired_.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (auto &r : ready)
        r.deleter();
    return ready.size();
}

void
EpochManager::drain()
{
    while (pendingCount() > 0) {
        if (tryAdvance() == 0)
            std::this_thread::yield();
    }
}

size_t
EpochManager::pendingCount() const
{
    std::lock_guard<std::mutex> lock(retired_mu_);
    return retired_.size();
}

}  // namespace prism
