/**
 * @file
 * Monotonic clock helpers and calibrated busy-wait primitives.
 *
 * The storage simulator models device latency in real time. Sub-microsecond
 * delays (NVM accesses) cannot be modelled with nanosleep — the syscall
 * overhead dwarfs them — so we busy-spin using a pause-loop calibrated at
 * startup. Longer delays (SSD accesses) combine sleeping and spinning.
 *
 * A process-wide TimeScale lets benchmarks compress simulated device time
 * (all device latencies multiply by the same factor, preserving ratios).
 */
#pragma once

#include <cstdint>

namespace prism {

/** @return monotonic wall-clock time in nanoseconds. */
uint64_t nowNs();

/** @return monotonic wall-clock time in microseconds. */
inline uint64_t nowUs() { return nowNs() / 1000; }

/**
 * Busy-wait (pause loop) for the given number of nanoseconds. Suitable for
 * delays under ~20 us; accurate to roughly the TSC read overhead.
 */
void spinFor(uint64_t ns);

/**
 * Block the calling thread for @p ns nanoseconds, choosing between a spin
 * (short delays) and a sleep+spin combination (long delays).
 */
void delayFor(uint64_t ns);

/**
 * Process-wide multiplier applied to simulated device latencies.
 * 1.0 reproduces the Figure-1 device profile in real time; smaller values
 * compress time for faster benchmark runs without changing device ratios.
 */
class TimeScale {
  public:
    static double get();
    static void set(double scale);

    /** Apply the scale to a nominal device latency. */
    static uint64_t scaled(uint64_t ns);
};

}  // namespace prism
