/**
 * @file
 * Token-bucket rate limiter used to model device bandwidth.
 *
 * An SSD with B bytes/s of bandwidth is modelled by charging each transfer
 * size/B seconds of "device time". The bucket accumulates capacity at the
 * configured rate; a transfer blocks (in the caller's thread) until its
 * tokens are available, which naturally produces queueing delay when the
 * offered load exceeds the device bandwidth — the effect behind the
 * batching-vs-latency tradeoff in §4.2 of the paper.
 */
#pragma once

#include <cstdint>
#include <mutex>

namespace prism {

/** Thread-safe token bucket; tokens are bytes, refill rate is bytes/s. */
class TokenBucket {
  public:
    /**
     * @param bytes_per_sec refill rate (device bandwidth).
     * @param burst_bytes   bucket capacity (max burst).
     */
    TokenBucket(double bytes_per_sec, uint64_t burst_bytes);

    /**
     * Reserve @p bytes of capacity.
     *
     * @return the number of nanoseconds the caller must delay so that the
     *         transfer finishes no earlier than the modelled device would
     *         allow (0 when bandwidth is not saturated). The caller — not
     *         the bucket — performs the delay so completion threads can
     *         overlap it with other work.
     */
    uint64_t acquire(uint64_t bytes);

    /**
     * Take @p bytes only if the bucket currently holds them; never go
     * into deficit. Returns whether the tokens were taken. Used by
     * consumers that drop work instead of delaying it (log rate
     * limiting), where acquire()'s unconditional deduction would let
     * suppressed work run up debt against future tokens.
     */
    bool tryAcquire(uint64_t bytes);

    /** Change the refill rate (used by time-scale changes). */
    void setRate(double bytes_per_sec);

    double rate() const;

  private:
    mutable std::mutex mu_;
    double bytes_per_ns_;
    double available_;       ///< tokens currently in the bucket
    double burst_;           ///< bucket capacity
    uint64_t last_refill_ns_;
};

}  // namespace prism
