/**
 * @file
 * Small spin locks for short critical sections in simulated devices and
 * store internals. Satisfies the Lockable named requirement so it works
 * with std::lock_guard / std::unique_lock.
 */
#pragma once

#include <atomic>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace prism {

inline void
cpuRelax()
{
#if defined(__x86_64__)
    _mm_pause();
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/** Test-and-test-and-set spin lock. */
class SpinLock {
  public:
    void
    lock()
    {
        while (true) {
            if (!locked_.exchange(true, std::memory_order_acquire))
                return;
            while (locked_.load(std::memory_order_relaxed))
                cpuRelax();
        }
    }

    bool try_lock() { // NOLINT: std Lockable spelling
        return !locked_.exchange(true, std::memory_order_acquire);
    }

    void unlock() { locked_.store(false, std::memory_order_release); }

  private:
    std::atomic<bool> locked_{false};
};

/** FIFO ticket lock — fair under contention, used for chunk allocation. */
class TicketLock {
  public:
    void
    lock()
    {
        const uint32_t my = next_.fetch_add(1, std::memory_order_relaxed);
        while (serving_.load(std::memory_order_acquire) != my)
            cpuRelax();
    }

    /** Take a ticket only when it would be served immediately. */
    bool
    try_lock()  // NOLINT: std Lockable spelling
    {
        uint32_t serving = serving_.load(std::memory_order_acquire);
        uint32_t expected = serving;
        return next_.compare_exchange_strong(
            expected, serving + 1, std::memory_order_acquire,
            std::memory_order_relaxed);
    }

    void
    unlock()
    {
        serving_.fetch_add(1, std::memory_order_release);
    }

  private:
    std::atomic<uint32_t> next_{0};
    std::atomic<uint32_t> serving_{0};
};

}  // namespace prism
