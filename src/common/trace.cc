#include "common/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/stats.h"

namespace prism::trace {

namespace detail {

std::atomic<uint32_t> g_flags{0};
thread_local uint32_t t_depth = 0;
thread_local uint32_t t_cur_leaf = 0;
thread_local uint8_t t_cur_layer =
    static_cast<uint8_t>(Layer::kOther);

namespace {

/** Layer-tracking request, preserved across recomputeFlags(). */
std::atomic<bool> g_layer_track{false};

}  // namespace

namespace {

/** Deepest nesting level self-time accounting tracks per thread. */
constexpr size_t kAcctDepth = 64;

/**
 * t_child_ns[d] = summed durations of already-closed child spans of
 * the span currently open at depth d on this thread. Read and reset by
 * that span's close; no span below kAcctDepth ever reads a stale cell
 * because each close zeroes its own depth.
 */
thread_local uint64_t t_child_ns[kAcctDepth];

/**
 * Layer classification per interned name id (id-1 indexed), written
 * once at intern time, read relaxed on every span close. Ids beyond
 * the table (pathological intern churn) fall back to kOther.
 */
constexpr size_t kMaxClassifiedNames = 4096;
std::atomic<uint8_t> g_layer_of[kMaxClassifiedNames];

/** Per-layer cumulative self-time; sharded counters, read by telemetry. */
std::array<stats::Counter, kNumLayers> &
layerBusyCounters()
{
    static auto *c =
        new std::array<stats::Counter, kNumLayers>();  // never destroyed
    return *c;
}

}  // namespace

Layer
layerOfId(uint32_t name_id)
{
    if (name_id == 0 || name_id > kMaxClassifiedNames)
        return Layer::kOther;
    return static_cast<Layer>(
        g_layer_of[name_id - 1].load(std::memory_order_relaxed));
}

void
setLayerTracking(bool on)
{
    g_layer_track.store(on, std::memory_order_relaxed);
    if (on)
        g_flags.fetch_or(kFlagLayerTrack, std::memory_order_relaxed);
    else
        g_flags.fetch_and(~kFlagLayerTrack, std::memory_order_relaxed);
}

void
accountSpanSelf(uint32_t name_id, uint8_t depth, uint64_t dur_ns)
{
    uint64_t child = 0;
    if (depth < kAcctDepth) {
        child = t_child_ns[depth];
        t_child_ns[depth] = 0;
    }
    if (depth > 0 && depth - 1u < kAcctDepth)
        t_child_ns[depth - 1] += dur_ns;
    const uint64_t self = dur_ns > child ? dur_ns - child : 0;
    layerBusyCounters()[static_cast<size_t>(layerOfId(name_id))].add(
        self);
}

void
classifyName(uint32_t name_id, std::string_view name)
{
    if (name_id == 0 || name_id > kMaxClassifiedNames)
        return;
    g_layer_of[name_id - 1].store(
        static_cast<uint8_t>(layerOfSpanName(name)),
        std::memory_order_relaxed);
}

}  // namespace detail

const char *
layerName(size_t layer)
{
    static const char *const kNames[kNumLayers] = {
        "core", "pwb", "svc", "vs", "ssd", "bg", "other"};
    return layer < kNumLayers ? kNames[layer] : "?";
}

Layer
layerOfSpanName(std::string_view name)
{
    auto has = [&](std::string_view prefix) {
        return name.substr(0, prefix.size()) == prefix;
    };
    if (has("prism.") || has("hsit."))
        return Layer::kCore;
    if (has("pwb."))
        return Layer::kPwb;
    if (has("svc."))
        return Layer::kSvc;
    if (has("vs."))
        return Layer::kVs;
    if (has("ssd."))
        return Layer::kSsd;
    if (has("bg."))
        return Layer::kBg;
    return Layer::kOther;
}

uint64_t
layerBusyNs(size_t layer)
{
    if (layer >= kNumLayers)
        return 0;
    return detail::layerBusyCounters()[layer].value();
}

// ---------------------------------------------------------------------
// TraceRing
// ---------------------------------------------------------------------

namespace {

size_t
roundUpPow2(size_t v)
{
    size_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

// Slot layout (8 u64 words):
//   w0  seq: 0 = being written, event_index + 1 = published
//   w1  ts_ns
//   w2  dur_ns
//   w3  name_id(32) | depth(8) | type(8) | track(16)
//   w4  arg1_name_id(32) | arg2_name_id(32)
//   w5  arg1
//   w6  arg2
//   w7  unused (pads the slot to one cache line)
uint64_t
packMeta(uint32_t name_id, uint8_t depth, EventType type, uint16_t track)
{
    return (static_cast<uint64_t>(name_id) << 32) |
           (static_cast<uint64_t>(depth) << 24) |
           (static_cast<uint64_t>(type) << 16) |
           static_cast<uint64_t>(track);
}

}  // namespace

TraceRing::TraceRing(size_t capacity_events)
    : capacity_(roundUpPow2(capacity_events < 64 ? 64 : capacity_events)),
      mask_(capacity_ - 1),
      words_(new std::atomic<uint64_t>[capacity_ * detail::kSlotWords])
{
    for (size_t i = 0; i < capacity_ * detail::kSlotWords; i++)
        words_[i].store(0, std::memory_order_relaxed);
}

void
TraceRing::emit(EventType type, uint32_t name_id, uint64_t ts_ns,
                uint64_t dur_ns, uint8_t depth, uint16_t track,
                uint32_t arg1_name, uint64_t arg1, uint32_t arg2_name,
                uint64_t arg2)
{
    const uint64_t idx = head_.load(std::memory_order_relaxed);
    std::atomic<uint64_t> *w =
        &words_[(idx & mask_) * detail::kSlotWords];
    // Per-slot seqlock: invalidate, write payload, publish. All words
    // are atomics, so a racing snapshot sees at worst a stale value it
    // then discards — never UB.
    w[0].store(0, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    w[1].store(ts_ns, std::memory_order_relaxed);
    w[2].store(dur_ns, std::memory_order_relaxed);
    w[3].store(packMeta(name_id, depth, type, track),
               std::memory_order_relaxed);
    w[4].store((static_cast<uint64_t>(arg1_name) << 32) | arg2_name,
               std::memory_order_relaxed);
    w[5].store(arg1, std::memory_order_relaxed);
    w[6].store(arg2, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    w[0].store(idx + 1, std::memory_order_relaxed);
    head_.store(idx + 1, std::memory_order_release);
}

void
TraceRing::snapshot(std::vector<Event> &out) const
{
    const uint64_t h = head_.load(std::memory_order_acquire);
    const uint64_t lo = h > capacity_ ? h - capacity_ : 0;
    for (uint64_t idx = lo; idx < h; idx++) {
        const std::atomic<uint64_t> *w =
            &words_[(idx & mask_) * detail::kSlotWords];
        const uint64_t seq1 = w[0].load(std::memory_order_acquire);
        if (seq1 != idx + 1)
            continue;  // never published or already overwritten
        Event e;
        e.ts_ns = w[1].load(std::memory_order_relaxed);
        e.dur_ns = w[2].load(std::memory_order_relaxed);
        const uint64_t meta = w[3].load(std::memory_order_relaxed);
        const uint64_t argn = w[4].load(std::memory_order_relaxed);
        e.arg1 = w[5].load(std::memory_order_relaxed);
        e.arg2 = w[6].load(std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_acquire);
        const uint64_t seq2 = w[0].load(std::memory_order_relaxed);
        if (seq2 != idx + 1)
            continue;  // torn: overwritten mid-read
        e.name_id = static_cast<uint32_t>(meta >> 32);
        e.depth = static_cast<uint8_t>(meta >> 24);
        const uint8_t ty = static_cast<uint8_t>(meta >> 16);
        if (ty < 1 || ty > 4 || e.name_id == 0)
            continue;
        e.type = static_cast<EventType>(ty);
        e.track = static_cast<uint16_t>(meta);
        e.arg1_name_id = static_cast<uint32_t>(argn >> 32);
        e.arg2_name_id = static_cast<uint32_t>(argn);
        out.push_back(e);
    }
}

// ---------------------------------------------------------------------
// TraceRegistry
// ---------------------------------------------------------------------

TraceRegistry::TraceRegistry() = default;

TraceRegistry &
TraceRegistry::global()
{
    static TraceRegistry *g = new TraceRegistry();  // never destroyed
    return *g;
}

void
TraceRegistry::recomputeFlags()
{
    uint32_t f = 0;
    if (user_enabled_.load(std::memory_order_relaxed))
        f |= detail::kFlagTracing;
    if (slow_threshold_ns_.load(std::memory_order_relaxed) != 0)
        f |= detail::kFlagTracing | detail::kFlagSlowOp;
    if (detail::g_layer_track.load(std::memory_order_relaxed))
        f |= detail::kFlagLayerTrack;
    detail::g_flags.store(f, std::memory_order_relaxed);
}

void
TraceRegistry::setEnabled(bool on)
{
    user_enabled_.store(on, std::memory_order_relaxed);
    recomputeFlags();
}

void
TraceRegistry::setSlowOpThresholdUs(uint64_t us)
{
    slow_threshold_ns_.store(us * 1000, std::memory_order_relaxed);
    recomputeFlags();
}

void
TraceRegistry::setSlowOpKeep(size_t keep)
{
    std::lock_guard<std::mutex> lock(mu_);
    slow_keep_ = keep < 1 ? 1 : keep;
    if (slow_ops_.size() > slow_keep_)
        slow_ops_.resize(slow_keep_);
}

void
TraceRegistry::setRingCapacity(size_t events)
{
    std::lock_guard<std::mutex> lock(mu_);
    ring_capacity_ = roundUpPow2(events < 64 ? 64 : events);
}

uint32_t
TraceRegistry::internName(const char *name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = name_ids_.find(name);
    if (it != name_ids_.end())
        return it->second;
    names_.emplace_back(name);
    const uint32_t id = static_cast<uint32_t>(names_.size());
    name_ids_.emplace(name, id);
    detail::classifyName(id, name);
    return id;
}

std::string
TraceRegistry::nameOf(uint32_t id) const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (id == 0 || id > names_.size())
        return std::string();
    return names_[id - 1];
}

TraceRing &
TraceRegistry::ring()
{
    const int tid = ThreadId::self() %
                    static_cast<int>(ThreadId::kMaxThreads);
    TraceRing *r = rings_[static_cast<size_t>(tid)].load(
        std::memory_order_acquire);
    if (r != nullptr)
        return *r;
    std::lock_guard<std::mutex> lock(mu_);
    r = rings_[static_cast<size_t>(tid)].load(std::memory_order_acquire);
    if (r == nullptr) {
        r = new TraceRing(ring_capacity_);  // lives forever
        rings_[static_cast<size_t>(tid)].store(
            r, std::memory_order_release);
    }
    return *r;
}

void
TraceRegistry::setThreadName(const std::string &name)
{
    const int tid = ThreadId::self() %
                    static_cast<int>(ThreadId::kMaxThreads);
    std::lock_guard<std::mutex> lock(mu_);
    thread_names_[tid] = name;
}

uint16_t
TraceRegistry::registerTrack(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    const size_t next = track_names_.size();
    if (kFirstSyntheticTrack + next >= UINT16_MAX)
        return UINT16_MAX;  // out of tracks; events fall on the emitter
    track_names_.push_back(name);
    return static_cast<uint16_t>(kFirstSyntheticTrack + next);
}

void
TraceRegistry::clear()
{
    // Rings are single-writer, so a foreign thread cannot rewind them;
    // instead remember "now" and filter older events out of snapshots.
    clear_floor_ns_.store(nowNs(), std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    slow_ops_.clear();
}

std::vector<std::pair<int, std::vector<Event>>>
TraceRegistry::snapshotAll() const
{
    const uint64_t floor_ns =
        clear_floor_ns_.load(std::memory_order_relaxed);
    size_t names_sz;
    {
        std::lock_guard<std::mutex> lock(mu_);
        names_sz = names_.size();
    }
    std::vector<std::pair<int, std::vector<Event>>> all;
    for (int tid = 0; tid < ThreadId::kMaxThreads; tid++) {
        const TraceRing *r = rings_[static_cast<size_t>(tid)].load(
            std::memory_order_acquire);
        if (r == nullptr)
            continue;
        std::vector<Event> evs;
        r->snapshot(evs);
        std::vector<Event> kept;
        kept.reserve(evs.size());
        for (const Event &e : evs) {
            if (e.ts_ns < floor_ns || e.name_id > names_sz)
                continue;
            if (e.arg1_name_id > names_sz || e.arg2_name_id > names_sz)
                continue;  // torn slot that slipped past the seqlock
            kept.push_back(e);
        }
        if (!kept.empty())
            all.emplace_back(tid, std::move(kept));
    }
    return all;
}

namespace {

void
appendEscaped(std::string &out, const std::string &s)
{
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

void
appendMeta(std::string &out, int tid, const std::string &name,
           bool &first)
{
    if (!first)
        out += ",\n";
    first = false;
    char buf[64];
    out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":";
    std::snprintf(buf, sizeof(buf), "%d", tid);
    out += buf;
    out += ",\"args\":{\"name\":\"";
    appendEscaped(out, name);
    out += "\"}}";
}

}  // namespace

std::string
TraceRegistry::exportJson() const
{
    auto all = snapshotAll();

    // Route synthetic-track events onto their own tid rows.
    std::map<int, std::vector<Event>> by_tid;
    for (auto &[tid, evs] : all) {
        for (const Event &e : evs) {
            const int row = e.track != 0 ? static_cast<int>(e.track)
                                         : tid;
            by_tid[row].push_back(e);
        }
    }

    uint64_t min_ts = UINT64_MAX;
    for (auto &[tid, evs] : by_tid)
        for (const Event &e : evs)
            min_ts = std::min(min_ts, e.ts_ns);
    if (min_ts == UINT64_MAX)
        min_ts = 0;

    // Copy naming state once under the lock.
    std::vector<std::string> names;
    std::map<int, std::string> tnames;
    std::vector<std::string> tracks;
    {
        std::lock_guard<std::mutex> lock(mu_);
        names = names_;
        tnames = thread_names_;
        tracks = track_names_;
    }
    auto nameFor = [&](uint32_t id) -> const std::string & {
        static const std::string unknown = "?";
        if (id == 0 || id > names.size())
            return unknown;
        return names[id - 1];
    };

    std::string out;
    out.reserve(1 << 16);
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    bool first = true;
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,"
           "\"args\":{\"name\":\"prism\"}}";
    first = false;
    for (auto &[tid, name] : tnames)
        appendMeta(out, tid, name, first);
    for (size_t i = 0; i < tracks.size(); i++) {
        appendMeta(out, static_cast<int>(kFirstSyntheticTrack + i),
                   tracks[i], first);
    }

    char buf[256];
    for (auto &[tid, evs] : by_tid) {
        std::vector<Event> sorted = evs;
        std::sort(sorted.begin(), sorted.end(),
                  [](const Event &a, const Event &b) {
                      if (a.ts_ns != b.ts_ns)
                          return a.ts_ns < b.ts_ns;
                      return a.dur_ns > b.dur_ns;  // parents first
                  });
        for (const Event &e : sorted) {
            out += ",\n{\"name\":\"";
            appendEscaped(out, nameFor(e.name_id));
            out += "\",\"pid\":1,\"tid\":";
            std::snprintf(buf, sizeof(buf), "%d", tid);
            out += buf;
            const double ts_us =
                static_cast<double>(e.ts_ns - min_ts) / 1000.0;
            switch (e.type) {
            case EventType::kSpan:
                std::snprintf(buf, sizeof(buf),
                              ",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f",
                              ts_us,
                              static_cast<double>(e.dur_ns) / 1000.0);
                out += buf;
                if (e.arg1_name_id != 0) {
                    out += ",\"args\":{\"";
                    appendEscaped(out, nameFor(e.arg1_name_id));
                    std::snprintf(buf, sizeof(buf), "\":%" PRIu64,
                                  e.arg1);
                    out += buf;
                    if (e.arg2_name_id != 0) {
                        out += ",\"";
                        appendEscaped(out, nameFor(e.arg2_name_id));
                        std::snprintf(buf, sizeof(buf), "\":%" PRIu64,
                                      e.arg2);
                        out += buf;
                    }
                    out += "}";
                }
                break;
            case EventType::kInstant:
                std::snprintf(buf, sizeof(buf),
                              ",\"ph\":\"i\",\"ts\":%.3f,\"s\":\"t\"",
                              ts_us);
                out += buf;
                if (e.arg1_name_id != 0) {
                    out += ",\"args\":{\"";
                    appendEscaped(out, nameFor(e.arg1_name_id));
                    std::snprintf(buf, sizeof(buf), "\":%" PRIu64 "}",
                                  e.arg1);
                    out += buf;
                }
                break;
            case EventType::kAsyncBegin:
            case EventType::kAsyncEnd:
                std::snprintf(
                    buf, sizeof(buf),
                    ",\"ph\":\"%s\",\"cat\":\"prism\",\"id\":\"0x%"
                    PRIx64 "\",\"ts\":%.3f",
                    e.type == EventType::kAsyncBegin ? "b" : "e",
                    e.arg1, ts_us);
                out += buf;
                break;
            }
            out += "}";
        }
    }
    out += "\n]}\n";
    return out;
}

bool
TraceRegistry::exportJsonToFile(const std::string &path) const
{
    const std::string json = exportJson();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const size_t n = std::fwrite(json.data(), 1, json.size(), f);
    const bool ok = (n == json.size()) && std::fclose(f) == 0;
    if (n != json.size())
        std::fclose(f);
    return ok;
}

void
TraceRegistry::maybeCaptureSlowOp(uint32_t name_id, uint64_t start_ns,
                                  uint64_t dur_ns, uint64_t head_before)
{
    slow_captured_.fetch_add(1, std::memory_order_relaxed);
    const int tid = ThreadId::self() %
                    static_cast<int>(ThreadId::kMaxThreads);
    const TraceRing *r = rings_[static_cast<size_t>(tid)].load(
        std::memory_order_acquire);

    SlowOp op;
    op.op = nameOf(name_id);
    op.tid = tid;
    op.start_ns = start_ns;
    op.dur_ns = dur_ns;
    if (r != nullptr) {
        // The op's subtree is every event this thread emitted since the
        // scope opened; if the ring wrapped past head_before in the
        // meantime, the oldest children are gone.
        op.truncated = r->head() - head_before > r->capacity();
        std::vector<Event> evs;
        r->snapshot(evs);
        for (const Event &e : evs) {
            if (e.ts_ns >= start_ns && e.ts_ns <= start_ns + dur_ns)
                op.events.push_back(e);
        }
        std::sort(op.events.begin(), op.events.end(),
                  [](const Event &a, const Event &b) {
                      if (a.ts_ns != b.ts_ns)
                          return a.ts_ns < b.ts_ns;
                      return a.dur_ns > b.dur_ns;  // root first
                  });
        if (op.events.size() > kMaxSlowOpEvents) {
            // Keep the root and the newest children.
            Event root = op.events.front();
            op.events.erase(
                op.events.begin(),
                op.events.end() -
                    static_cast<long>(kMaxSlowOpEvents - 1));
            op.events.insert(op.events.begin(), root);
            op.truncated = true;
        }
    }

    std::lock_guard<std::mutex> lock(mu_);
    if (slow_ops_.size() >= slow_keep_ &&
        dur_ns <= slow_ops_.back().dur_ns) {
        return;  // not among the worst we already keep
    }
    auto it = std::upper_bound(
        slow_ops_.begin(), slow_ops_.end(), dur_ns,
        [](uint64_t d, const SlowOp &s) { return d > s.dur_ns; });
    slow_ops_.insert(it, std::move(op));
    if (slow_ops_.size() > slow_keep_)
        slow_ops_.pop_back();
}

std::vector<SlowOp>
TraceRegistry::slowOps() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return slow_ops_;
}

void
TraceRegistry::clearSlowOps()
{
    std::lock_guard<std::mutex> lock(mu_);
    slow_ops_.clear();
}

void
TraceRegistry::publishStats() const
{
    uint64_t recorded = 0, dropped = 0, wraps = 0;
    for (int tid = 0; tid < ThreadId::kMaxThreads; tid++) {
        const TraceRing *r = rings_[static_cast<size_t>(tid)].load(
            std::memory_order_acquire);
        if (r == nullptr)
            continue;
        const uint64_t h = r->head();
        recorded += h;
        if (h > r->capacity())
            dropped += h - r->capacity();
        wraps += h / r->capacity();
    }
    auto &reg = stats::StatsRegistry::global();
    reg.gauge("prism.trace.events_recorded", "events")
        .set(static_cast<int64_t>(recorded));
    reg.gauge("prism.trace.events_dropped", "events")
        .set(static_cast<int64_t>(dropped));
    reg.gauge("prism.trace.ring_wraps", "wraps")
        .set(static_cast<int64_t>(wraps));
    reg.gauge("prism.trace.slow_ops_captured", "ops")
        .set(static_cast<int64_t>(
            slow_captured_.load(std::memory_order_relaxed)));
    for (size_t l = 0; l < kNumLayers; l++) {
        reg.gauge(std::string("prism.trace.busy_ns.") + layerName(l),
                  "ns")
            .set(static_cast<int64_t>(layerBusyNs(l)));
    }
}

}  // namespace prism::trace
