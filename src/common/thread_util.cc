#include "common/thread_util.h"

#include <atomic>
#include <mutex>
#include <vector>

#include <pthread.h>
#include <sched.h>

#include "common/logging.h"

// Profiler lifecycle hooks (common/prof.h): registration records the
// kernel tid + stack bounds the SIGPROF handler needs (and self-arms a
// timer when sampling is live); exit deletes the thread's timer before
// the dense id is recycled, so a successor never inherits a timer
// aimed at a dead tid.
namespace prism::prof::detail {
void onThreadRegistered(int tid);
void onThreadExit(int tid);
}  // namespace prism::prof::detail

namespace prism {

namespace {

std::atomic<int> g_next_thread_id{0};
std::mutex g_free_ids_mu;
std::vector<int> g_free_ids;

// Returning the id at thread exit lets long-running processes (the
// bench binaries create driver threads per phase) stay within the
// dense-id budget; per-id state such as a thread's PWB is simply
// adopted by the next thread that receives the id, which the design
// already supports (recovery reuses PWB slots the same way).
struct IdHolder {
    int id = -1;

    ~IdHolder()
    {
        if (id >= 0) {
            prof::detail::onThreadExit(id);
            std::lock_guard<std::mutex> lock(g_free_ids_mu);
            g_free_ids.push_back(id);
        }
    }
};
thread_local IdHolder tls_thread_id;

}  // namespace

int
ThreadId::self()
{
    if (tls_thread_id.id < 0) {
        {
            std::lock_guard<std::mutex> lock(g_free_ids_mu);
            if (!g_free_ids.empty()) {
                tls_thread_id.id = g_free_ids.back();
                g_free_ids.pop_back();
            }
        }
        if (tls_thread_id.id < 0) {
            tls_thread_id.id =
                g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
            PRISM_CHECK(tls_thread_id.id < kMaxThreads);
        }
        prof::detail::onThreadRegistered(tls_thread_id.id);
    }
    return tls_thread_id.id;
}

int
ThreadId::count()
{
    return g_next_thread_id.load(std::memory_order_relaxed);
}

void
pinThreadToCpu(int cpu)
{
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu, &set);
    // Best effort only: sandboxes and small machines may reject affinity.
    (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
}

}  // namespace prism
