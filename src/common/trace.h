/**
 * @file
 * prism::trace — process-wide, lock-free operation tracing.
 *
 * Every instrumented thread owns a fixed-size binary ring of events;
 * recording an event when tracing is enabled is a handful of relaxed
 * atomic stores plus one release bump of the ring head, and a single
 * relaxed load + branch when disabled. Spans are scoped (RAII) and nest
 * via a per-thread depth counter; the exporter reconstructs the tree
 * from (timestamp, duration) containment, which is exactly the Chrome
 * trace-event "X" (complete event) model, so a dump opens directly in
 * Perfetto (https://ui.perfetto.dev) or chrome://tracing.
 *
 * Why rings of *words* and not structs: the exporter snapshots rings
 * that other threads may still be writing. Every slot word is a relaxed
 * std::atomic<uint64_t>, so a torn read yields a stale/garbled event —
 * which the exporter then drops via validation — never UB or a TSan
 * report. Event names are interned to small ids for the same reason: a
 * reader can never chase a dangling const char*.
 *
 * On top of the rings sits slow-op capture: ops (put/get/scan/...)
 * whose wall time exceeds a threshold get their span tree copied out of
 * the owner's ring into a bounded keep-worst buffer, giving always-on
 * tail-latency attribution with no steady-state cost beyond the ring
 * writes themselves.
 */
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/thread_util.h"

namespace prism::trace {

/** Event kinds; values appear packed into ring words. */
enum class EventType : uint8_t {
    kSpan = 1,         ///< Chrome "X": ts + dur
    kInstant = 2,      ///< Chrome "i"
    kAsyncBegin = 3,   ///< Chrome "b" (overlapping interval start)
    kAsyncEnd = 4,     ///< Chrome "e"
};

/**
 * Subsystem layers CPU time is attributed to. Every interned span name
 * is classified once (by prefix, at intern time); when tracing is on,
 * each closing span adds its *self* time — duration minus the time
 * spent in already-accounted child spans — to its layer's busy
 * counter. Self-time accounting is what makes the per-layer sums
 * comparable to wall-clock × threads: a nested pwb.chunk_write second
 * is pwb time, not additionally bg time.
 */
enum class Layer : uint8_t {
    kCore = 0,  ///< prism.* op paths + hsit.*
    kPwb,       ///< pwb.* (append/stall/reclaim/chunk writes)
    kSvc,       ///< svc.*
    kVs,        ///< vs.* (value storage + GC)
    kSsd,       ///< ssd.* (submit-side CPU; device time is separate)
    kBg,        ///< bg.* (pool dispatch overhead outside subsystem work)
    kOther,     ///< pmem.*, benches, anything unclassified
};

constexpr size_t kNumLayers = 7;

/** Stable lowercase layer name ("core", "pwb", ...). */
const char *layerName(size_t layer);

/** Classify a span name by prefix (exposed for tests/telemetry). */
Layer layerOfSpanName(std::string_view name);

/**
 * Cumulative self-time attributed to @p layer across all threads, in
 * ns. Monotonic; only grows while tracing is enabled. Telemetry
 * windows it into per-interval busy series.
 */
uint64_t layerBusyNs(size_t layer);

/** A decoded event (snapshot/export side only). */
struct Event {
    uint64_t ts_ns = 0;
    uint64_t dur_ns = 0;
    uint32_t name_id = 0;
    uint8_t depth = 0;
    EventType type = EventType::kSpan;
    /**
     * 0 = the emitting thread's own track. Non-zero places the event on
     * a synthetic track (e.g. per-SSD-channel service timelines whose
     * events are emitted by a device worker thread but belong on the
     * channel's own row).
     */
    uint16_t track = 0;
    uint32_t arg1_name_id = 0;  ///< 0 = no arg
    uint32_t arg2_name_id = 0;
    uint64_t arg1 = 0;          ///< for async events: pairing id
    uint64_t arg2 = 0;
};

namespace detail {

/**
 * Words per ring slot (one cache line). Word 0 is a per-slot seqlock:
 * 0 while the owner is writing, event_index+1 once published, so a
 * concurrent snapshot can detect and drop mid-overwrite slots.
 */
constexpr size_t kSlotWords = 8;

/**
 * Global enable flags, checked (one relaxed load) by every macro.
 * Bit 0: ring recording on. Bit 1: slow-op capture on. Bit 2: layer
 * tracking on (spans maintain t_cur_layer/t_cur_leaf without emitting
 * events — armed by the CPU/lock profilers, prism::prof).
 */
extern std::atomic<uint32_t> g_flags;

constexpr uint32_t kFlagTracing = 1u;
constexpr uint32_t kFlagSlowOp = 2u;
constexpr uint32_t kFlagLayerTrack = 4u;

inline bool tracingEnabled() {
    return (g_flags.load(std::memory_order_relaxed) & kFlagTracing) != 0;
}
inline bool anythingEnabled() {
    return g_flags.load(std::memory_order_relaxed) != 0;
}

/** Per-thread span nesting depth (no atomicity needed). */
extern thread_local uint32_t t_depth;

/**
 * The calling thread's innermost open span (interned name id, 0 =
 * none) and its layer, maintained by Span/OpScope whenever layer
 * tracking is armed. Plain TLS words so the SIGPROF sampling handler
 * (prism::prof) can read them async-signal-safely to key CPU samples
 * by layer/span.
 */
extern thread_local uint32_t t_cur_leaf;
extern thread_local uint8_t t_cur_layer;

/** Layer of an interned name id (relaxed table lookup). */
Layer layerOfId(uint32_t name_id);

/**
 * Arm/disarm layer tracking (kFlagLayerTrack). Independent of
 * setEnabled(): the profilers key samples by layer without paying for
 * event recording.
 */
void setLayerTracking(bool on);

/**
 * Close-of-span bookkeeping for per-layer CPU attribution: charges
 * `dur - time already charged to children at depth` to the span's
 * layer and rolls `dur` up into the parent's child accumulator.
 */
void accountSpanSelf(uint32_t name_id, uint8_t depth, uint64_t dur_ns);

}  // namespace detail

/**
 * One thread's event ring. Single writer (the owning thread); any
 * thread may snapshot concurrently. Capacity is a power of two; the
 * head is a monotonic event count, so head > capacity means the ring
 * wrapped and the oldest (head - capacity) events were overwritten.
 */
class TraceRing {
  public:
    explicit TraceRing(size_t capacity_events);

    /** Owner-only. Encodes and publishes one event. */
    void emit(EventType type, uint32_t name_id, uint64_t ts_ns,
              uint64_t dur_ns, uint8_t depth, uint16_t track,
              uint32_t arg1_name, uint64_t arg1, uint32_t arg2_name,
              uint64_t arg2);

    /** Monotonic number of events ever emitted. */
    uint64_t head() const { return head_.load(std::memory_order_acquire); }

    size_t capacity() const { return capacity_; }

    /**
     * Copy out the newest events (up to the full ring), oldest first.
     * Safe against a concurrent writer: slots that may be mid-overwrite
     * are skipped via sequence validation.
     */
    void snapshot(std::vector<Event> &out) const;

  private:
    size_t capacity_;     ///< power of two, in events
    size_t mask_;
    std::unique_ptr<std::atomic<uint64_t>[]> words_;
    std::atomic<uint64_t> head_{0};
};

/** A captured slow operation: root span + its subtree of events. */
struct SlowOp {
    std::string op;          ///< root span name, e.g. "prism.put"
    int tid = 0;             ///< dense ThreadId of the emitting thread
    uint64_t start_ns = 0;
    uint64_t dur_ns = 0;
    bool truncated = false;  ///< subtree exceeded the copy bound
    std::vector<Event> events;  ///< root first, then children in ts order
};

/**
 * Process-wide tracer: owns the name-intern table, the per-thread
 * rings, thread/track names, and the slow-op buffer.
 */
class TraceRegistry {
  public:
    static TraceRegistry &global();

    TraceRegistry(const TraceRegistry &) = delete;
    TraceRegistry &operator=(const TraceRegistry &) = delete;

    /**
     * Turn ring recording on/off. Enabling is cheap and idempotent;
     * rings persist (and keep their events) across off/on cycles until
     * clear().
     */
    void setEnabled(bool on);
    bool enabled() const { return detail::tracingEnabled(); }

    /**
     * Slow-op capture threshold in microseconds; 0 disables capture.
     * Independent of setEnabled — capture needs the rings, so it
     * implies recording while an op is being watched.
     */
    void setSlowOpThresholdUs(uint64_t us);
    uint64_t slowOpThresholdUs() const {
        return slow_threshold_ns_.load(std::memory_order_relaxed) / 1000;
    }

    /** Keep at most this many worst ops (default 32). */
    void setSlowOpKeep(size_t keep);

    /** Events-per-thread ring capacity for rings created *after* this
     *  call (existing rings keep their size). Rounded up to a power of
     *  two; default 16384. */
    void setRingCapacity(size_t events);

    /** Intern @p name, returning a stable id (1-based; 0 = invalid). */
    uint32_t internName(const char *name);

    /** Reverse lookup; empty string for unknown ids. */
    std::string nameOf(uint32_t id) const;

    /** The calling thread's ring (created on first use). */
    TraceRing &ring();

    /**
     * Name the calling thread's track in exported output, e.g.
     * "bg-worker-3". Also safe to call before any event is emitted.
     */
    void setThreadName(const std::string &name);

    /**
     * Reserve a synthetic track id (for events that logically belong to
     * a hardware resource rather than a thread, e.g. one SSD channel).
     * Returned ids are process-unique and start above any dense
     * ThreadId. @p name shows as the track's thread_name in the export.
     */
    uint16_t registerTrack(const std::string &name);

    /** Drop all ring contents, slow ops, and per-run counters
     *  (thread registrations and interned names survive). */
    void clear();

    /**
     * Export everything recorded so far as a Chrome-trace JSON object
     * ({"traceEvents":[...]}). Timestamps are rebased to the earliest
     * event and emitted in microseconds (Chrome's unit).
     */
    std::string exportJson() const;

    /** exportJson() to a file; returns false on I/O error. */
    bool exportJsonToFile(const std::string &path) const;

    /** Decoded snapshot of every ring (tests, custom renderers). */
    std::vector<std::pair<int, std::vector<Event>>> snapshotAll() const;

    /** Copy of the current keep-worst slow-op buffer, worst first. */
    std::vector<SlowOp> slowOps() const;
    void clearSlowOps();

    /** Total slow ops ever captured (monotonic, survives eviction). */
    uint64_t slowOpsCaptured() const {
        return slow_captured_.load(std::memory_order_relaxed);
    }

    /**
     * Push prism.trace.* gauges/counters into the global stats
     * registry: events recorded/dropped, ring wraps, slow ops captured.
     */
    void publishStats() const;

    /** Internal: slow-op check done by OpScope's destructor. */
    void maybeCaptureSlowOp(uint32_t name_id, uint64_t start_ns,
                            uint64_t dur_ns, uint64_t head_before);

    uint64_t slowOpThresholdNs() const {
        return slow_threshold_ns_.load(std::memory_order_relaxed);
    }

  private:
    TraceRegistry();

    /** Synthetic track ids start here; dense tids stay below. */
    static constexpr uint16_t kFirstSyntheticTrack =
        static_cast<uint16_t>(ThreadId::kMaxThreads);

    /** Per-slow-op event copy bound (root + newest children). */
    static constexpr size_t kMaxSlowOpEvents = 512;

    /** Derive g_flags from user_enabled_ + slow threshold. */
    void recomputeFlags();

    mutable std::mutex mu_;  ///< interning, naming, slow ops, export
    std::vector<std::string> names_;           ///< id-1 -> name
    std::map<std::string, uint32_t> name_ids_;
    std::map<int, std::string> thread_names_;  ///< dense tid -> name
    std::vector<std::string> track_names_;     ///< synthetic tracks
    size_t ring_capacity_ = 16384;
    size_t slow_keep_ = 32;
    std::vector<SlowOp> slow_ops_;  ///< sorted worst (longest) first

    std::atomic<bool> user_enabled_{false};
    std::atomic<uint64_t> slow_threshold_ns_{0};
    std::atomic<uint64_t> slow_captured_{0};
    /** Events older than this are invisible to snapshots (clear()). */
    std::atomic<uint64_t> clear_floor_ns_{0};

    /** Rings indexed by dense ThreadId; never freed once created. */
    std::array<std::atomic<TraceRing *>, ThreadId::kMaxThreads> rings_{};
};

/**
 * RAII scoped span. Construct with an interned name id; the destructor
 * emits one "X" event covering the scope. Up to two integer args can be
 * attached before destruction. Inactive (zero-cost beyond the flag
 * check) when tracing is disabled at construction.
 */
class Span {
  public:
    explicit Span(uint32_t name_id)
    {
        const uint32_t f =
            detail::g_flags.load(std::memory_order_relaxed);
        if (f == 0)
            return;
        if ((f & detail::kFlagLayerTrack) != 0) {
            prev_leaf_ = detail::t_cur_leaf;
            prev_layer_ = detail::t_cur_layer;
            detail::t_cur_leaf = name_id;
            detail::t_cur_layer =
                static_cast<uint8_t>(detail::layerOfId(name_id));
            layer_active_ = true;
        }
        if ((f & detail::kFlagTracing) == 0)
            return;
        name_id_ = name_id;
        start_ns_ = nowNs();
        depth_ = static_cast<uint8_t>(detail::t_depth < 255
                                          ? detail::t_depth
                                          : 255);
        detail::t_depth++;
        active_ = true;
    }

    ~Span()
    {
        if (layer_active_) {
            detail::t_cur_leaf = prev_leaf_;
            detail::t_cur_layer = prev_layer_;
        }
        if (!active_)
            return;
        detail::t_depth--;
        const uint64_t dur = nowNs() - start_ns_;
        TraceRegistry::global().ring().emit(
            EventType::kSpan, name_id_, start_ns_, dur, depth_, 0,
            arg1_name_, arg1_, arg2_name_, arg2_);
        detail::accountSpanSelf(name_id_, depth_, dur);
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    bool active() const { return active_; }

    /** Attach a named integer argument (max two; extras ignored). */
    void
    arg(uint32_t name_id, uint64_t value)
    {
        if (!active_)
            return;
        if (arg1_name_ == 0) {
            arg1_name_ = name_id;
            arg1_ = value;
        } else if (arg2_name_ == 0) {
            arg2_name_ = name_id;
            arg2_ = value;
        }
    }

  private:
    bool active_ = false;
    bool layer_active_ = false;
    uint8_t depth_ = 0;
    uint8_t prev_layer_ = 0;
    uint32_t prev_leaf_ = 0;
    uint32_t name_id_ = 0;
    uint32_t arg1_name_ = 0;
    uint32_t arg2_name_ = 0;
    uint64_t start_ns_ = 0;
    uint64_t arg1_ = 0;
    uint64_t arg2_ = 0;
};

/**
 * RAII root-op scope (PrismDb::put/get/...): a Span that additionally
 * remembers where the thread's ring stood at entry so a slow op's
 * subtree can be copied out on exit. Active when either tracing or
 * slow-op capture is on.
 */
class OpScope {
  public:
    explicit OpScope(uint32_t name_id)
    {
        const uint32_t f =
            detail::g_flags.load(std::memory_order_relaxed);
        if (f == 0)
            return;
        if ((f & detail::kFlagLayerTrack) != 0) {
            prev_leaf_ = detail::t_cur_leaf;
            prev_layer_ = detail::t_cur_layer;
            detail::t_cur_leaf = name_id;
            detail::t_cur_layer =
                static_cast<uint8_t>(detail::layerOfId(name_id));
            layer_active_ = true;
        }
        // Ring recording (and thus slow-op capture, which implies it
        // via recomputeFlags) needs the tracing bit specifically.
        if ((f & detail::kFlagTracing) == 0)
            return;
        name_id_ = name_id;
        start_ns_ = nowNs();
        head_before_ = TraceRegistry::global().ring().head();
        depth_ = static_cast<uint8_t>(detail::t_depth < 255
                                          ? detail::t_depth
                                          : 255);
        detail::t_depth++;
        active_ = true;
    }

    ~OpScope()
    {
        if (layer_active_) {
            detail::t_cur_leaf = prev_leaf_;
            detail::t_cur_layer = prev_layer_;
        }
        if (!active_)
            return;
        detail::t_depth--;
        const uint64_t dur = nowNs() - start_ns_;
        auto &reg = TraceRegistry::global();
        reg.ring().emit(EventType::kSpan, name_id_, start_ns_, dur,
                        depth_, 0, arg1_name_, arg1_, 0, 0);
        detail::accountSpanSelf(name_id_, depth_, dur);
        const uint64_t thr = reg.slowOpThresholdNs();
        if (thr != 0 && dur >= thr)
            reg.maybeCaptureSlowOp(name_id_, start_ns_, dur,
                                   head_before_);
    }

    OpScope(const OpScope &) = delete;
    OpScope &operator=(const OpScope &) = delete;

    void
    arg(uint32_t name_id, uint64_t value)
    {
        if (!active_)
            return;
        arg1_name_ = name_id;
        arg1_ = value;
    }

  private:
    bool active_ = false;
    bool layer_active_ = false;
    uint8_t depth_ = 0;
    uint8_t prev_layer_ = 0;
    uint32_t prev_leaf_ = 0;
    uint32_t name_id_ = 0;
    uint32_t arg1_name_ = 0;
    uint64_t start_ns_ = 0;
    uint64_t arg1_ = 0;
    uint64_t head_before_ = 0;
};

/** Emit an instant event (no duration). */
inline void
instant(uint32_t name_id, uint32_t arg_name = 0, uint64_t arg = 0)
{
    if (!detail::tracingEnabled())
        return;
    TraceRegistry::global().ring().emit(
        EventType::kInstant, name_id, nowNs(), 0,
        static_cast<uint8_t>(detail::t_depth), 0, arg_name, arg, 0, 0);
}

/**
 * Emit a pre-timed span (start/duration measured by the caller, e.g.
 * reconstructed from device completion records). @p track 0 = caller's
 * own track.
 */
inline void
spanAt(uint32_t name_id, uint64_t ts_ns, uint64_t dur_ns,
       uint16_t track = 0, uint32_t arg1_name = 0, uint64_t arg1 = 0,
       uint32_t arg2_name = 0, uint64_t arg2 = 0)
{
    if (!detail::tracingEnabled())
        return;
    TraceRegistry::global().ring().emit(EventType::kSpan, name_id,
                                        ts_ns, dur_ns, 0, track,
                                        arg1_name, arg1, arg2_name,
                                        arg2);
}

/**
 * Async interval (Chrome "b"/"e"): may overlap other intervals with
 * the same name on the same track; @p id pairs begin with end.
 */
inline void
asyncBegin(uint32_t name_id, uint64_t ts_ns, uint64_t id)
{
    if (!detail::tracingEnabled())
        return;
    TraceRegistry::global().ring().emit(EventType::kAsyncBegin, name_id,
                                        ts_ns, 0, 0, 0, 0, id, 0, 0);
}

inline void
asyncEnd(uint32_t name_id, uint64_t ts_ns, uint64_t id)
{
    if (!detail::tracingEnabled())
        return;
    TraceRegistry::global().ring().emit(EventType::kAsyncEnd, name_id,
                                        ts_ns, 0, 0, 0, 0, id, 0, 0);
}

}  // namespace prism::trace

// ---------------------------------------------------------------------
// Macros. Each call site interns its (string-literal) name once via a
// function-local static; after the first hit the cost is one relaxed
// flag load + branch when disabled.
// ---------------------------------------------------------------------

/** Interned name id for a string literal, cached per call site. */
#define PRISM_TRACE_NID(lit)                                            \
    ([]() -> uint32_t {                                                 \
        static const uint32_t id =                                      \
            ::prism::trace::TraceRegistry::global().internName(lit);    \
        return id;                                                      \
    }())

#define PRISM_TRACE_CAT2(a, b) a##b
#define PRISM_TRACE_CAT(a, b) PRISM_TRACE_CAT2(a, b)

/** Scoped span covering the rest of the enclosing block. */
#define PRISM_TRACE_SPAN(name)                                          \
    ::prism::trace::Span PRISM_TRACE_CAT(_pts_, __COUNTER__)(           \
        PRISM_TRACE_NID(name))

/** Scoped span bound to a named variable (for .arg() calls). */
#define PRISM_TRACE_SPAN_VAR(var, name)                                 \
    ::prism::trace::Span var(PRISM_TRACE_NID(name))

/** Root op scope (slow-op capture eligible). */
#define PRISM_TRACE_OP(var, name)                                       \
    ::prism::trace::OpScope var(PRISM_TRACE_NID(name))

/** Instant event. */
#define PRISM_TRACE_INSTANT(name)                                       \
    ::prism::trace::instant(PRISM_TRACE_NID(name))
