#include "common/numa.h"

#include <sched.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>

#include "common/stats.h"

namespace prism::numa {
namespace {

/** Parse a sysfs cpulist ("0-3,8,10-11") into CPU ids. */
std::vector<int>
parseCpuList(const std::string &list)
{
    std::vector<int> cpus;
    std::stringstream ss(list);
    std::string range;
    while (std::getline(ss, range, ',')) {
        if (range.empty())
            continue;
        const size_t dash = range.find('-');
        int lo = 0;
        int hi = 0;
        try {
            if (dash == std::string::npos) {
                lo = hi = std::stoi(range);
            } else {
                lo = std::stoi(range.substr(0, dash));
                hi = std::stoi(range.substr(dash + 1));
            }
        } catch (...) {
            continue;
        }
        for (int c = lo; c <= hi && c - lo < 4096; c++)
            cpus.push_back(c);
    }
    return cpus;
}

std::vector<int>
onlineCpus()
{
    long n = sysconf(_SC_NPROCESSORS_ONLN);
    if (n < 1)
        n = 1;
    std::vector<int> cpus;
    cpus.reserve(static_cast<size_t>(n));
    for (long c = 0; c < n; c++)
        cpus.push_back(static_cast<int>(c));
    return cpus;
}

Topology
probe()
{
    Topology topo;

    // Test hook: PRISM_NUMA_FAKE=<k> splits the online CPUs into k
    // synthetic nodes so placement logic runs on single-node CI.
    if (const char *fake = std::getenv("PRISM_NUMA_FAKE");
        fake != nullptr && fake[0] != '\0') {
        int k = std::atoi(fake);
        if (k < 1)
            k = 1;
        const std::vector<int> cpus = onlineCpus();
        if (k > static_cast<int>(cpus.size()))
            k = static_cast<int>(cpus.size());
        topo.node_cpus.assign(static_cast<size_t>(k), {});
        for (size_t i = 0; i < cpus.size(); i++)
            topo.node_cpus[i % static_cast<size_t>(k)].push_back(cpus[i]);
        topo.fake = true;
        return topo;
    }

    for (int node = 0; node < 1024; node++) {
        std::ifstream f("/sys/devices/system/node/node" +
                        std::to_string(node) + "/cpulist");
        if (!f.is_open())
            break;
        std::string list;
        std::getline(f, list);
        std::vector<int> cpus = parseCpuList(list);
        // Memory-only nodes (CXL expanders) have an empty cpulist; they
        // are not placement targets for threads, so skip them.
        if (!cpus.empty())
            topo.node_cpus.push_back(std::move(cpus));
        topo.from_sysfs = true;
    }
    if (topo.node_cpus.empty()) {
        topo.node_cpus.push_back(onlineCpus());
        topo.from_sysfs = false;
    }
    return topo;
}

}  // namespace

const Topology &
topology()
{
    static const Topology topo = [] {
        Topology t = probe();
        stats::StatsRegistry::global()
            .gauge("prism.numa.nodes", "nodes")
            .set(static_cast<uint64_t>(t.nodes()));
        return t;
    }();
    return topo;
}

int
nodeCount()
{
    return topology().nodes();
}

int
nodeForShard(size_t shard, size_t shard_count)
{
    (void)shard_count;
    const int nodes = nodeCount();
    if (nodes <= 1)
        return -1;
    return static_cast<int>(shard % static_cast<size_t>(nodes));
}

bool
pinThreadToNode(int node)
{
    const Topology &topo = topology();
    if (node < 0 || node >= topo.nodes())
        return false;
    // Pinning to "all CPUs of the only node" is a no-op with downside
    // (it would override any user-set affinity mask), so skip it.
    if (topo.nodes() <= 1 && !topo.fake)
        return false;
    cpu_set_t set;
    CPU_ZERO(&set);
    for (int cpu : topo.node_cpus[static_cast<size_t>(node)])
        if (cpu >= 0 && cpu < CPU_SETSIZE)
            CPU_SET(cpu, &set);
    return sched_setaffinity(0, sizeof(set), &set) == 0;
}

Topology
probeNow()
{
    return probe();
}

std::string
describe()
{
    const Topology &topo = topology();
    std::ostringstream os;
    os << topo.nodes() << (topo.nodes() == 1 ? " node" : " nodes") << " ("
       << (topo.fake ? "fake" : topo.from_sysfs ? "sysfs" : "fallback")
       << "):";
    for (int n = 0; n < topo.nodes(); n++) {
        const auto &cpus = topo.node_cpus[static_cast<size_t>(n)];
        os << " node" << n << "=";
        if (cpus.empty()) {
            os << "-";
            continue;
        }
        os << cpus.front();
        if (cpus.size() > 1)
            os << ".." << cpus.back() << "(" << cpus.size() << ")";
    }
    return os.str();
}

}  // namespace prism::numa
