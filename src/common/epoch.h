/**
 * @file
 * Epoch-based memory reclamation (EBR).
 *
 * Prism uses EBR in two places the paper calls out (§5.4): safely freeing
 * SVC entries after eviction while readers may still hold references, and
 * reclaiming deleted HSIT entries. An object retired in epoch E is freed
 * only after the global epoch has advanced by two — the first advance
 * guarantees no *new* reader can find the object, the second that every
 * reader from the retiring epoch has finished.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace prism {

/**
 * A process-wide epoch domain. Threads wrap store operations in
 * EpochGuard; background reclaimers call retire() and advance().
 */
class EpochManager {
  public:
    static constexpr int kMaxThreads = 256;
    /** Sentinel local epoch meaning "not inside a critical section". */
    static constexpr uint64_t kQuiescent = UINT64_MAX;

    EpochManager();
    ~EpochManager();

    EpochManager(const EpochManager &) = delete;
    EpochManager &operator=(const EpochManager &) = delete;

    /** Enter a read-side critical section; returns the slot used. */
    int enter();

    /** Leave the critical section for @p slot. */
    void exit(int slot);

    /**
     * Schedule @p deleter to run once two epochs have passed.
     * Thread-safe; may be called inside or outside a critical section.
     */
    void retire(std::function<void()> deleter);

    /**
     * Try to advance the global epoch and run deleters that have become
     * safe. Called by background threads; cheap when readers are active.
     *
     * @return number of deleters executed.
     */
    size_t tryAdvance();

    /** Block until everything retired so far has been reclaimed. */
    void drain();

    uint64_t globalEpoch() const {
        return global_epoch_.load(std::memory_order_acquire);
    }

    /** Number of retired-but-not-yet-freed objects (for tests). */
    size_t pendingCount() const;

    /** Internal: give a slot back when its owning thread exits. */
    void releaseSlotAtThreadExit(int slot);

  private:
    /** Max EpochManager instances alive at once (slots are recycled). */
    static constexpr int kMaxManagers = 64;

    struct alignas(64) Slot {
        std::atomic<uint64_t> local_epoch{kQuiescent};
        std::atomic<bool> in_use{false};
    };

    struct Retired {
        std::function<void()> deleter;
        uint64_t epoch;
    };

    int acquireSlot();

    std::atomic<uint64_t> global_epoch_{2};
    std::vector<Slot> slots_;
    int manager_id_;
    uint64_t generation_ = 0;

    mutable std::mutex retired_mu_;
    std::vector<Retired> retired_;
};

/** RAII guard for an epoch critical section. */
class EpochGuard {
  public:
    explicit EpochGuard(EpochManager &mgr) : mgr_(mgr), slot_(mgr.enter()) {}
    ~EpochGuard() { mgr_.exit(slot_); }

    EpochGuard(const EpochGuard &) = delete;
    EpochGuard &operator=(const EpochGuard &) = delete;

  private:
    EpochManager &mgr_;
    int slot_;
};

}  // namespace prism
