/**
 * @file
 * Latency histogram with logarithmic bucketing.
 *
 * Used by the workload driver and the benchmark harnesses to report the
 * average / median / 99th-percentile latencies the paper's Tables 3 and 4
 * and Figures 11 and 14 present. Recording is wait-free per thread when
 * each thread owns a Histogram and results are merged afterwards.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace prism {

/**
 * Fixed-memory histogram of non-negative values (nanoseconds by
 * convention). Buckets are arranged in powers of two with linear
 * sub-buckets, giving < 1.6% relative error across the full range.
 */
class Histogram {
  public:
    Histogram();

    /** Record one sample. */
    void record(uint64_t value);

    /** Merge another histogram into this one. */
    void merge(const Histogram &other);

    /**
     * Subtract an earlier copy of this histogram, leaving only the
     * samples recorded in between (the interval-delta primitive the
     * telemetry sampler builds rate windows from). Assumes @p earlier
     * is a prefix of this histogram — same metric, snapshotted earlier
     * — and clamps per bucket so a mismatched pair cannot underflow.
     * count/sum (and hence mean) are exact; min/max are recomputed from
     * the surviving buckets, so they carry bucket-resolution error.
     */
    void subtract(const Histogram &earlier);

    /** Remove all samples. */
    void reset();

    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    uint64_t min() const { return count_ ? min_ : 0; }
    uint64_t max() const { return max_; }
    double mean() const;

    /**
     * Occupied buckets as (upper_bound, count) pairs in ascending bound
     * order — the raw material for cumulative exporters (Prometheus
     * `_bucket{le=...}`). Empty buckets are omitted; callers accumulate.
     */
    std::vector<std::pair<uint64_t, uint64_t>> nonZeroBuckets() const;

    /**
     * Value at quantile @p q in [0, 1]; e.g. 0.5 for the median,
     * 0.99 for the tail the paper reports.
     */
    uint64_t percentile(double q) const;

    /** "avg=… p50=… p90=… p99=… p999=… max=…" summary (microseconds). */
    std::string summaryUs() const;

  private:
    static constexpr int kSubBucketBits = 5;  // 32 linear buckets per octave
    static constexpr int kSubBuckets = 1 << kSubBucketBits;
    static constexpr int kOctaves = 40;       // covers > 10^12 ns

    static int bucketFor(uint64_t value);
    static uint64_t bucketUpperBound(int index);

    std::vector<uint64_t> buckets_;
    uint64_t count_;
    uint64_t sum_;
    uint64_t min_;
    uint64_t max_;
};

}  // namespace prism
