#include "common/stats.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/logging.h"

namespace prism::stats {

StatsRegistry &
StatsRegistry::global()
{
    static StatsRegistry *registry = new StatsRegistry();  // never torn down
    return *registry;
}

Counter &
StatsRegistry::counter(std::string_view name, std::string_view unit)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = metrics_.find(name);
    if (it == metrics_.end()) {
        Entry e;
        e.type = MetricType::kCounter;
        e.unit = std::string(unit);
        e.c = std::make_unique<Counter>();
        it = metrics_.emplace(std::string(name), std::move(e)).first;
    }
    PRISM_CHECK(it->second.type == MetricType::kCounter &&
                "metric re-registered with a different type");
    return *it->second.c;
}

Gauge &
StatsRegistry::gauge(std::string_view name, std::string_view unit)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = metrics_.find(name);
    if (it == metrics_.end()) {
        Entry e;
        e.type = MetricType::kGauge;
        e.unit = std::string(unit);
        e.g = std::make_unique<Gauge>();
        it = metrics_.emplace(std::string(name), std::move(e)).first;
    }
    PRISM_CHECK(it->second.type == MetricType::kGauge &&
                "metric re-registered with a different type");
    return *it->second.g;
}

LatencyStat &
StatsRegistry::histogram(std::string_view name, std::string_view unit)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = metrics_.find(name);
    if (it == metrics_.end()) {
        Entry e;
        e.type = MetricType::kHistogram;
        e.unit = std::string(unit);
        e.h = std::make_unique<LatencyStat>();
        it = metrics_.emplace(std::string(name), std::move(e)).first;
    }
    PRISM_CHECK(it->second.type == MetricType::kHistogram &&
                "metric re-registered with a different type");
    return *it->second.h;
}

StatsSnapshot
StatsRegistry::snapshot() const
{
    StatsSnapshot out;
    std::lock_guard<std::mutex> lock(mu_);
    out.metrics.reserve(metrics_.size());
    for (const auto &[name, e] : metrics_) {
        MetricSnapshot m;
        m.name = name;
        m.type = e.type;
        m.unit = e.unit;
        switch (e.type) {
          case MetricType::kCounter:
            m.counter = e.c->value();
            break;
          case MetricType::kGauge:
            m.gauge = e.g->value();
            break;
          case MetricType::kHistogram: {
            auto h = std::make_shared<Histogram>(e.h->merged());
            m.count = h->count();
            m.mean = h->mean();
            m.p50 = h->percentile(0.5);
            m.p90 = h->percentile(0.9);
            m.p99 = h->percentile(0.99);
            m.p999 = h->percentile(0.999);
            m.max = h->max();
            m.hist = std::move(h);
            break;
          }
        }
        out.metrics.push_back(std::move(m));
    }
    return out;  // std::map iteration is already name-sorted
}

size_t
StatsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return metrics_.size();
}

namespace {

const MetricSnapshot *
find(const std::vector<MetricSnapshot> &metrics, std::string_view name)
{
    const auto it = std::lower_bound(
        metrics.begin(), metrics.end(), name,
        [](const MetricSnapshot &m, std::string_view n) {
            return m.name < n;
        });
    if (it == metrics.end() || it->name != name)
        return nullptr;
    return &*it;
}

void
appendJsonEscaped(std::string &out, const std::string &s)
{
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
}

}  // namespace

uint64_t
StatsSnapshot::counter(std::string_view name) const
{
    const MetricSnapshot *m = find(metrics, name);
    return (m != nullptr && m->type == MetricType::kCounter) ? m->counter
                                                             : 0;
}

int64_t
StatsSnapshot::gauge(std::string_view name) const
{
    const MetricSnapshot *m = find(metrics, name);
    return (m != nullptr && m->type == MetricType::kGauge) ? m->gauge : 0;
}

const MetricSnapshot *
StatsSnapshot::histogram(std::string_view name) const
{
    const MetricSnapshot *m = find(metrics, name);
    return (m != nullptr && m->type == MetricType::kHistogram) ? m
                                                               : nullptr;
}

uint64_t
StatsSnapshot::counterDelta(const StatsSnapshot &earlier,
                            std::string_view name) const
{
    const uint64_t now = counter(name);
    const uint64_t before = earlier.counter(name);
    return now >= before ? now - before : 0;
}

Histogram
StatsSnapshot::histogramDelta(const StatsSnapshot &earlier,
                              std::string_view name) const
{
    Histogram out;
    const MetricSnapshot *cur = histogram(name);
    if (cur == nullptr || cur->hist == nullptr)
        return out;
    out.merge(*cur->hist);
    const MetricSnapshot *was = earlier.histogram(name);
    if (was != nullptr && was->hist != nullptr)
        out.subtract(*was->hist);
    return out;
}

std::string
StatsSnapshot::toString() const
{
    std::string out;
    char line[256];
    for (const auto &m : metrics) {
        switch (m.type) {
          case MetricType::kCounter:
            std::snprintf(line, sizeof(line), "%-44s %14" PRIu64 " %s\n",
                          m.name.c_str(), m.counter, m.unit.c_str());
            break;
          case MetricType::kGauge:
            std::snprintf(line, sizeof(line), "%-44s %14" PRId64 " %s\n",
                          m.name.c_str(), m.gauge, m.unit.c_str());
            break;
          case MetricType::kHistogram:
            std::snprintf(line, sizeof(line),
                          "%-44s count=%" PRIu64 " mean=%.0f p50=%" PRIu64
                          " p90=%" PRIu64 " p99=%" PRIu64 " p999=%" PRIu64
                          " max=%" PRIu64 " %s\n",
                          m.name.c_str(), m.count, m.mean, m.p50, m.p90,
                          m.p99, m.p999, m.max, m.unit.c_str());
            break;
        }
        out += line;
    }
    return out;
}

std::string
StatsSnapshot::toJson() const
{
    std::string counters, gauges, histograms;
    char buf[256];
    for (const auto &m : metrics) {
        std::string *dest = nullptr;
        switch (m.type) {
          case MetricType::kCounter:
            std::snprintf(buf, sizeof(buf), "%" PRIu64, m.counter);
            dest = &counters;
            break;
          case MetricType::kGauge:
            std::snprintf(buf, sizeof(buf), "%" PRId64, m.gauge);
            dest = &gauges;
            break;
          case MetricType::kHistogram:
            std::snprintf(buf, sizeof(buf),
                          "{\"count\":%" PRIu64 ",\"mean\":%.1f,"
                          "\"p50\":%" PRIu64 ",\"p90\":%" PRIu64
                          ",\"p99\":%" PRIu64 ",\"p999\":%" PRIu64
                          ",\"max\":%" PRIu64 "}",
                          m.count, m.mean, m.p50, m.p90, m.p99, m.p999,
                          m.max);
            dest = &histograms;
            break;
        }
        if (!dest->empty())
            *dest += ",";
        *dest += "\"";
        appendJsonEscaped(*dest, m.name);
        *dest += "\":";
        *dest += buf;
    }
    std::string out = "{\"counters\":{" + counters + "},\"gauges\":{" +
                      gauges + "},\"histograms\":{" + histograms + "}}";
    return out;
}

}  // namespace prism::stats
