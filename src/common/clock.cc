#include "common/clock.h"

#include <atomic>
#include <ctime>
#include <thread>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace prism {

uint64_t
nowNs()
{
    timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<uint64_t>(ts.tv_nsec);
}

namespace {

inline void
cpuRelax()
{
#if defined(__x86_64__)
    _mm_pause();
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

}  // namespace

void
spinFor(uint64_t ns)
{
    if (ns == 0)
        return;
    const uint64_t deadline = nowNs() + ns;
    while (nowNs() < deadline)
        cpuRelax();
}

void
delayFor(uint64_t ns)
{
    if (ns == 0)
        return;
    // Sleeping is only worthwhile when the delay comfortably exceeds the
    // scheduler wakeup granularity; below that, spin for accuracy.
    constexpr uint64_t kSleepThresholdNs = 50 * 1000;
    if (ns >= kSleepThresholdNs) {
        const uint64_t deadline = nowNs() + ns;
        // Sleep for all but the final slice, then spin to the deadline.
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(ns - kSleepThresholdNs / 2));
        uint64_t now = nowNs();
        if (now < deadline)
            spinFor(deadline - now);
    } else {
        spinFor(ns);
    }
}

namespace {
std::atomic<double> g_time_scale{1.0};
}  // namespace

double
TimeScale::get()
{
    return g_time_scale.load(std::memory_order_relaxed);
}

void
TimeScale::set(double scale)
{
    g_time_scale.store(scale, std::memory_order_relaxed);
}

uint64_t
TimeScale::scaled(uint64_t ns)
{
    return static_cast<uint64_t>(
        static_cast<double>(ns) * g_time_scale.load(std::memory_order_relaxed));
}

}  // namespace prism
