#include "common/token_bucket.h"

#include <algorithm>

#include "common/clock.h"
#include "common/logging.h"

namespace prism {

TokenBucket::TokenBucket(double bytes_per_sec, uint64_t burst_bytes)
    : bytes_per_ns_(bytes_per_sec / 1e9),
      available_(static_cast<double>(burst_bytes)),
      burst_(static_cast<double>(burst_bytes)),
      last_refill_ns_(nowNs())
{
    PRISM_CHECK(bytes_per_sec > 0);
    PRISM_CHECK(burst_bytes > 0);
}

uint64_t
TokenBucket::acquire(uint64_t bytes)
{
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t now = nowNs();
    available_ = std::min(
        burst_,
        available_ + static_cast<double>(now - last_refill_ns_) *
                         bytes_per_ns_);
    last_refill_ns_ = now;
    available_ -= static_cast<double>(bytes);
    if (available_ >= 0)
        return 0;
    // The deficit is repaid by future refill; the caller waits it out.
    return static_cast<uint64_t>(-available_ / bytes_per_ns_);
}

bool
TokenBucket::tryAcquire(uint64_t bytes)
{
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t now = nowNs();
    available_ = std::min(
        burst_,
        available_ + static_cast<double>(now - last_refill_ns_) *
                         bytes_per_ns_);
    last_refill_ns_ = now;
    if (available_ < static_cast<double>(bytes))
        return false;
    available_ -= static_cast<double>(bytes);
    return true;
}

void
TokenBucket::setRate(double bytes_per_sec)
{
    std::lock_guard<std::mutex> lock(mu_);
    PRISM_CHECK(bytes_per_sec > 0);
    bytes_per_ns_ = bytes_per_sec / 1e9;
}

double
TokenBucket::rate() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_per_ns_ * 1e9;
}

}  // namespace prism
