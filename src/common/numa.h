/**
 * @file
 * Minimal NUMA topology probe and thread-placement helpers.
 *
 * Prism's shard router (core/shard_router.h) places each shard's
 * background machinery — pmem arena touch threads, reclaim/GC threads,
 * VS completion threads and its slice of the shared BgPool — on one
 * NUMA node so a shard's NVM writes, DRAM cache and SSD interrupts stay
 * local. The probe reads sysfs (/sys/devices/system/node/nodeN/
 * cpulist) and degrades gracefully: when the hierarchy is absent
 * (containers, non-Linux) it reports a single node covering every
 * online CPU, and every pin becomes a no-op.
 *
 * For tests and single-node CI boxes, `PRISM_NUMA_FAKE=<k>` partitions
 * the online CPUs into k synthetic nodes so placement logic can be
 * exercised deterministically without multi-socket hardware.
 */
#pragma once

#include <string>
#include <vector>

namespace prism::numa {

/** Immutable snapshot of the machine's node → CPU map. */
struct Topology {
    /** Per-node CPU id lists; size() >= 1 always. */
    std::vector<std::vector<int>> node_cpus;
    /** True when sysfs was readable (not the single-node fallback). */
    bool from_sysfs = false;
    /** True when PRISM_NUMA_FAKE synthesized the node split. */
    bool fake = false;

    int nodes() const { return static_cast<int>(node_cpus.size()); }
};

/** Process-wide topology, probed once on first use. */
const Topology &topology();

/** Number of NUMA nodes (>= 1). */
int nodeCount();

/**
 * Deterministic shard → node assignment: round-robin so consecutive
 * shards land on different sockets. Returns -1 ("anywhere") on
 * single-node machines, where pinning would only hurt.
 */
int nodeForShard(size_t shard, size_t shard_count);

/**
 * Best-effort: restrict the calling thread to @p node's CPUs.
 * @return true when the affinity call succeeded. node < 0, an unknown
 * node, or a failed sched_setaffinity all return false without side
 * effects (CI sandboxes often forbid affinity changes).
 */
bool pinThreadToNode(int node);

/** One-line human summary, e.g. "2 nodes (sysfs): node0=0-15 node1=16-31". */
std::string describe();

/**
 * Run a fresh probe (env + sysfs) and return it WITHOUT touching the
 * cached topology(). Test hook: lets a test flip PRISM_NUMA_FAKE and
 * observe the resulting split even after topology() was first used.
 */
Topology probeNow();

}  // namespace prism::numa
