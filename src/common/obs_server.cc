#include "common/obs_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cctype>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <exception>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/prof.h"
#include "common/histogram.h"
#include "common/log.h"
#include "common/logging.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace prism::obs {

// ---------------------------------------------------------------------
// Prometheus rendering
// ---------------------------------------------------------------------

namespace {

/** Exposition metric name: [a-zA-Z_:][a-zA-Z0-9_:]*; dots become '_'. */
std::string
sanitizeName(std::string_view name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    if (out.empty() || (out[0] >= '0' && out[0] <= '9'))
        out.insert(out.begin(), '_');
    return out;
}

/**
 * Split `<prefix><n>.<rest>` into (label value n, rest). Returns false
 * when @p name does not match the indexed pattern.
 */
bool
splitIndexed(std::string_view name, std::string_view prefix,
             std::string *index, std::string *rest)
{
    if (name.substr(0, prefix.size()) != prefix)
        return false;
    std::string_view tail = name.substr(prefix.size());
    size_t i = 0;
    while (i < tail.size() && std::isdigit(
               static_cast<unsigned char>(tail[i])))
        i++;
    if (i == 0 || i >= tail.size() || tail[i] != '.')
        return false;
    *index = std::string(tail.substr(0, i));
    *rest = std::string(tail.substr(i + 1));
    return true;
}

struct Sample {
    std::string labels;  ///< rendered pairs without braces, e.g. shard="0"
    const stats::MetricSnapshot *m;
};

struct Family {
    stats::MetricType type;
    std::string unit;
    std::vector<Sample> samples;
};

void
appendU64(std::string &out, uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    out += buf;
}

void
renderHistogram(std::string &out, const std::string &fam,
                const Sample &s)
{
    // Coarsen the histogram's 32-per-octave sub-buckets to power-of-two
    // bounds: ~40 stable `le` values instead of 1280, and bounds that
    // do not wander between scrapes as new sub-buckets fill in.
    std::map<uint64_t, uint64_t> coarse;
    uint64_t count = 0, sum = 0;
    if (s.m->hist != nullptr) {
        for (auto [bound, n] : s.m->hist->nonZeroBuckets())
            coarse[std::bit_ceil(bound + 1)] += n;
        count = s.m->hist->count();
        sum = s.m->hist->sum();
    } else {
        count = s.m->count;
    }
    uint64_t cum = 0;
    for (auto [bound, n] : coarse) {
        cum += n;
        out += fam + "_bucket{";
        if (!s.labels.empty())
            out += s.labels + ",";
        out += "le=\"";
        appendU64(out, bound);
        out += "\"} ";
        appendU64(out, cum);
        out += "\n";
    }
    out += fam + "_bucket{";
    if (!s.labels.empty())
        out += s.labels + ",";
    out += "le=\"+Inf\"} ";
    appendU64(out, count);
    out += "\n";
    const std::string brace =
        s.labels.empty() ? "" : "{" + s.labels + "}";
    out += fam + "_sum" + brace + " ";
    appendU64(out, sum);
    out += "\n" + fam + "_count" + brace + " ";
    appendU64(out, count);
    out += "\n";
}

}  // namespace

std::string
renderPrometheus(const stats::StatsSnapshot &snap)
{
    // Group samples into families first so each family emits exactly
    // one # TYPE line. Snapshot order is name-sorted, so per-index
    // samples of one family arrive together; std::map keeps the output
    // deterministic either way.
    std::map<std::string, Family> families;
    for (const auto &m : snap.metrics) {
        std::string index, rest, labels, base = m.name;
        if (splitIndexed(m.name, "prism.shard.", &index, &rest)) {
            base = "prism.shard." + rest;
            labels = "shard=\"" + index + "\"";
        } else if (splitIndexed(m.name, "sim.ssd.", &index, &rest)) {
            base = "sim.ssd." + rest;
            labels = "device=\"" + index + "\"";
        }
        std::string fam = sanitizeName(base);
        if (m.type == stats::MetricType::kCounter)
            fam += "_total";
        auto [it, fresh] = families.try_emplace(
            fam, Family{m.type, m.unit, {}});
        if (!fresh && it->second.type != m.type)
            continue;  // name collision across types; first one wins
        it->second.samples.push_back(Sample{labels, &m});
    }

    std::string out;
    out.reserve(families.size() * 96);
    for (const auto &[fam, f] : families) {
        if (!f.unit.empty())
            out += "# HELP " + fam + " unit: " + f.unit + "\n";
        out += "# TYPE " + fam + " ";
        switch (f.type) {
          case stats::MetricType::kCounter: out += "counter\n"; break;
          case stats::MetricType::kGauge: out += "gauge\n"; break;
          case stats::MetricType::kHistogram: out += "histogram\n"; break;
        }
        for (const auto &s : f.samples) {
            if (f.type == stats::MetricType::kHistogram) {
                renderHistogram(out, fam, s);
                continue;
            }
            out += fam;
            if (!s.labels.empty())
                out += "{" + s.labels + "}";
            out += " ";
            if (f.type == stats::MetricType::kCounter) {
                appendU64(out, s.m->counter);
            } else {
                char buf[24];
                std::snprintf(buf, sizeof(buf), "%lld",
                              static_cast<long long>(s.m->gauge));
                out += buf;
            }
            out += "\n";
        }
    }
    return out;
}

int
resolveObsPort(int option_value)
{
    if (option_value >= 0)
        return option_value;
    if (const char *env = std::getenv("PRISM_OBS_PORT");
        env != nullptr && env[0] != '\0')
        return std::atoi(env);
    return -1;
}

// ---------------------------------------------------------------------
// Slow ops + health JSON
// ---------------------------------------------------------------------

namespace {

void
appendJsonString(std::string &out, std::string_view s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

}  // namespace

std::string
renderSlowOpsJson()
{
    auto &tr = trace::TraceRegistry::global();
    const auto ops = tr.slowOps();
    std::string out = "{\"threshold_us\":";
    appendU64(out, tr.slowOpThresholdUs());
    out += ",\"captured\":";
    appendU64(out, tr.slowOpsCaptured());
    out += ",\"slowops\":[";
    for (size_t i = 0; i < ops.size(); i++) {
        const auto &op = ops[i];
        if (i)
            out += ",";
        out += "{\"op\":";
        appendJsonString(out, op.op);
        out += ",\"tid\":";
        appendU64(out, static_cast<uint64_t>(op.tid));
        out += ",\"start_ns\":";
        appendU64(out, op.start_ns);
        out += ",\"dur_ns\":";
        appendU64(out, op.dur_ns);
        out += ",\"truncated\":";
        out += op.truncated ? "true" : "false";
        out += ",\"events\":[";
        for (size_t j = 0; j < op.events.size(); j++) {
            const auto &e = op.events[j];
            if (j)
                out += ",";
            out += "{\"name\":";
            appendJsonString(out, tr.nameOf(e.name_id));
            out += ",\"ts_ns\":";
            appendU64(out, e.ts_ns);
            out += ",\"dur_ns\":";
            appendU64(out, e.dur_ns);
            out += ",\"depth\":";
            appendU64(out, e.depth);
            out += "}";
        }
        out += "]}";
    }
    out += "]}";
    return out;
}

HealthReport
defaultHealthReport()
{
    HealthReport r;
    r.json = "{\"status\":\"ok\",\"detail\":\"no health provider "
             "registered\"}";
    return r;
}

namespace {

std::mutex g_listener_mu;
std::function<std::string()> g_listener_info;

}  // namespace

void
setListenerInfo(std::function<std::string()> fn)
{
    std::lock_guard<std::mutex> lock(g_listener_mu);
    g_listener_info = std::move(fn);
}

std::string
listenerInfoJson()
{
    std::function<std::string()> fn;
    {
        std::lock_guard<std::mutex> lock(g_listener_mu);
        fn = g_listener_info;
    }
    return fn ? fn() : std::string();
}

// ---------------------------------------------------------------------
// HTTP server
// ---------------------------------------------------------------------

namespace {

struct Conn {
    int fd = -1;
    std::string in;
    std::string out;
    size_t sent = 0;
    bool writing = false;
};

std::string
httpResponse(int status, const char *reason, const char *content_type,
             std::string_view body)
{
    char head[256];
    std::snprintf(head, sizeof(head),
                  "HTTP/1.1 %d %s\r\n"
                  "Content-Type: %s\r\n"
                  "Content-Length: %zu\r\n"
                  "Connection: close\r\n\r\n",
                  status, reason, content_type, body.size());
    std::string out = head;
    out += body;
    return out;
}

/** `key=value` lookup in a raw query string; @p dflt when absent
 *  or unparsable. Good enough for the two numeric pprof params. */
double
queryDouble(const std::string &query, const char *key, double dflt)
{
    const std::string needle = std::string(key) + "=";
    size_t pos = 0;
    while (pos < query.size()) {
        size_t end = query.find('&', pos);
        if (end == std::string::npos)
            end = query.size();
        if (query.compare(pos, needle.size(), needle) == 0) {
            try {
                return std::stod(query.substr(pos + needle.size(),
                                              end - pos - needle.size()));
            } catch (...) {
                return dflt;
            }
        }
        pos = end + 1;
    }
    return dflt;
}

constexpr char kIndexBody[] =
    "prism ops endpoints:\n"
    "  /metrics    Prometheus text exposition\n"
    "  /healthz    liveness (200/503) + error-budget JSON\n"
    "  /readyz     readiness (200/503)\n"
    "  /slowops    captured slow ops (JSON)\n"
    "  /telemetry  prism.telemetry.v1 series (JSON)\n"
    "  /trace      Chrome-trace export (JSON)\n"
    "  /pprof/profile?seconds=N[&hz=H]  CPU profile, collapsed stacks\n"
    "  /pprof/contention                lock-wait folded stacks\n";

}  // namespace

struct ObsServer::Impl {
    std::mutex mu;  // guards start/stop + callbacks swap
    std::function<HealthReport()> health;
    std::function<void()> metrics_prepare;

    Options opts;
    int listen_fd = -1;
    int wake_fd[2] = {-1, -1};  // self-pipe: [0] polled, [1] written
    std::atomic<int> port{0};
    std::atomic<bool> stop{false};
    std::thread thread;

    stats::Counter *requests = nullptr;
    stats::Counter *scrapes = nullptr;
    stats::Counter *errors = nullptr;
    stats::Gauge *port_gauge = nullptr;

    std::string handle(const std::string &target,
                       const std::string &query);
    std::string respond(const std::string &head);
    void loop();
};

std::string
ObsServer::Impl::handle(const std::string &target,
                        const std::string &query)
{
    if (target == "/" || target.empty())
        return httpResponse(200, "OK", "text/plain; charset=utf-8",
                            kIndexBody);
    if (target == "/metrics") {
        scrapes->inc();
        std::function<void()> prep;
        {
            std::lock_guard<std::mutex> lock(mu);
            prep = metrics_prepare;
        }
        if (prep)
            prep();
        return httpResponse(
            200, "OK", "text/plain; version=0.0.4; charset=utf-8",
            renderPrometheus(stats::StatsRegistry::global().snapshot()));
    }
    if (target == "/healthz" || target == "/readyz") {
        std::function<HealthReport()> fn;
        {
            std::lock_guard<std::mutex> lock(mu);
            fn = health;
        }
        const HealthReport r = fn ? fn() : defaultHealthReport();
        const bool ok = target == "/healthz" ? r.healthy : r.ready;
        return httpResponse(ok ? 200 : 503,
                            ok ? "OK" : "Service Unavailable",
                            "application/json", r.json);
    }
    if (target == "/slowops")
        return httpResponse(200, "OK", "application/json",
                            renderSlowOpsJson());
    if (target == "/telemetry")
        return httpResponse(
            200, "OK", "application/json",
            telemetry::Telemetry::global().exportSeriesJson());
    if (target == "/trace")
        return httpResponse(200, "OK", "application/json",
                            trace::TraceRegistry::global().exportJson());
    if (target == "/pprof/profile") {
        // Blocks this (single) server thread for the window: other
        // scrapes queue behind it, which is fine for an ops endpoint.
        const double seconds = queryDouble(query, "seconds", 5.0);
        const int hz = static_cast<int>(queryDouble(query, "hz", 0));
        return httpResponse(200, "OK", "text/plain; charset=utf-8",
                            prof::Profiler::global().profileForWindow(
                                hz, seconds));
    }
    if (target == "/pprof/contention")
        return httpResponse(200, "OK", "text/plain; charset=utf-8",
                            prof::renderContentionFolded());
    errors->inc();
    return httpResponse(404, "Not Found", "text/plain; charset=utf-8",
                        "unknown endpoint\n");
}

std::string
ObsServer::Impl::respond(const std::string &head)
{
    requests->inc();
    // Request line: METHOD SP target SP HTTP/x.y CRLF
    const size_t eol = head.find("\r\n");
    const std::string line = head.substr(0, eol);
    const size_t sp1 = line.find(' ');
    const size_t sp2 = line.rfind(' ');
    if (sp1 == std::string::npos || sp2 == sp1 ||
        line.compare(sp2 + 1, 5, "HTTP/") != 0) {
        errors->inc();
        return httpResponse(400, "Bad Request",
                            "text/plain; charset=utf-8",
                            "malformed request line\n");
    }
    const std::string method = line.substr(0, sp1);
    std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (method != "GET") {
        errors->inc();
        return httpResponse(405, "Method Not Allowed",
                            "text/plain; charset=utf-8",
                            "GET only\n");
    }
    std::string query;
    const size_t q = target.find('?');
    if (q != std::string::npos) {
        query = target.substr(q + 1);
        target.resize(q);
    }
    return handle(target, query);
}

void
ObsServer::Impl::loop()
{
    trace::TraceRegistry::global().setThreadName("prism-obs");
    std::vector<Conn> conns;
    while (!stop.load(std::memory_order_acquire)) {
        std::vector<pollfd> pfds;
        pfds.push_back({wake_fd[0], POLLIN, 0});
        pfds.push_back({listen_fd, POLLIN, 0});
        for (const auto &c : conns)
            pfds.push_back(
                {c.fd, static_cast<short>(c.writing ? POLLOUT : POLLIN),
                 0});
        // Connections accepted below are appended after this snapshot;
        // they have no pfds entry and must wait for the next poll.
        const size_t polled = conns.size();
        if (::poll(pfds.data(), pfds.size(), -1) < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (pfds[0].revents & POLLIN) {
            char drain[64];
            while (::read(wake_fd[0], drain, sizeof(drain)) > 0) {}
        }
        if (pfds[1].revents & POLLIN) {
            for (;;) {
                const int fd = ::accept4(listen_fd, nullptr, nullptr,
                                         SOCK_NONBLOCK | SOCK_CLOEXEC);
                if (fd < 0)
                    break;
                if (conns.size() >=
                    static_cast<size_t>(opts.max_connections)) {
                    ::close(fd);
                    continue;
                }
                conns.push_back(Conn{fd, "", "", 0, false});
            }
        }
        for (size_t i = 0; i < polled; i++) {
            Conn &c = conns[i];
            const pollfd &p = pfds[i + 2];
            bool dead = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) &&
                        !c.writing;
            if (!dead && !c.writing && (p.revents & POLLIN)) {
                char buf[4096];
                for (;;) {
                    const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
                    if (n > 0) {
                        c.in.append(buf, static_cast<size_t>(n));
                        continue;
                    }
                    if (n == 0)
                        dead = c.in.find("\r\n\r\n") ==
                               std::string::npos;
                    break;  // n == 0 (EOF) or EAGAIN/error
                }
                if (c.in.size() > opts.max_request_bytes) {
                    errors->inc();
                    c.out = httpResponse(
                        431, "Request Header Fields Too Large",
                        "text/plain; charset=utf-8",
                        "request too large\n");
                    c.writing = true;
                } else if (c.in.find("\r\n\r\n") != std::string::npos) {
                    c.out = respond(c.in);
                    c.writing = true;
                }
            }
            if (!dead && c.writing) {
                while (c.sent < c.out.size()) {
                    const ssize_t n =
                        ::send(c.fd, c.out.data() + c.sent,
                               c.out.size() - c.sent, MSG_NOSIGNAL);
                    if (n <= 0)
                        break;
                    c.sent += static_cast<size_t>(n);
                }
                if (c.sent >= c.out.size())
                    dead = true;  // response fully flushed
            }
            if (dead) {
                ::close(c.fd);
                c.fd = -1;
            }
        }
        conns.erase(std::remove_if(conns.begin(), conns.end(),
                                   [](const Conn &c) {
                                       return c.fd < 0;
                                   }),
                    conns.end());
    }
    for (auto &c : conns)
        ::close(c.fd);
}

ObsServer::ObsServer()
    : impl_(new Impl)
{
}

ObsServer::~ObsServer()
{
    stop();
    delete impl_;
}

void
ObsServer::setHealthProvider(std::function<HealthReport()> fn)
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->health = std::move(fn);
}

void
ObsServer::setMetricsPrepare(std::function<void()> fn)
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->metrics_prepare = std::move(fn);
}

bool
ObsServer::start(const Options &opts, std::string *err)
{
    PRISM_CHECK(!running());
    impl_->opts = opts;
    impl_->stop.store(false, std::memory_order_release);

    auto &reg = stats::StatsRegistry::global();
    impl_->requests = &reg.counter("prism.obs.requests", "requests");
    impl_->scrapes = &reg.counter("prism.obs.scrapes", "requests");
    impl_->errors = &reg.counter("prism.obs.http_errors", "requests");
    impl_->port_gauge = &reg.gauge("prism.obs.port");

    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK |
                            SOCK_CLOEXEC, 0);
    if (fd < 0) {
        if (err)
            *err = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(opts.port));
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(fd, 16) < 0) {
        if (err)
            *err = std::string("bind/listen: ") + std::strerror(errno);
        ::close(fd);
        return false;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len);
    if (::pipe2(impl_->wake_fd, O_NONBLOCK | O_CLOEXEC) != 0) {
        if (err)
            *err = std::string("pipe2: ") + std::strerror(errno);
        ::close(fd);
        return false;
    }
    impl_->listen_fd = fd;
    impl_->port.store(ntohs(addr.sin_port), std::memory_order_release);
    impl_->port_gauge->set(port());
    impl_->thread = std::thread([this] { impl_->loop(); });
    PRISM_LOG_INFO("obs.server", "listening on http://127.0.0.1:%d",
                   port());
    return true;
}

void
ObsServer::stop()
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (!impl_->thread.joinable())
        return;
    impl_->stop.store(true, std::memory_order_release);
    const char b = 1;
    [[maybe_unused]] ssize_t n = ::write(impl_->wake_fd[1], &b, 1);
    impl_->thread.join();
    ::close(impl_->listen_fd);
    ::close(impl_->wake_fd[0]);
    ::close(impl_->wake_fd[1]);
    impl_->listen_fd = impl_->wake_fd[0] = impl_->wake_fd[1] = -1;
    impl_->port.store(0, std::memory_order_release);
    impl_->port_gauge->set(0);
}

bool
ObsServer::running() const
{
    return impl_->port.load(std::memory_order_acquire) != 0;
}

int
ObsServer::port() const
{
    return impl_->port.load(std::memory_order_acquire);
}

// ---------------------------------------------------------------------
// Crash black-box
// ---------------------------------------------------------------------

namespace {

bool
mkdirRecursive(const std::string &path)
{
    std::string cur;
    for (size_t i = 0; i <= path.size(); i++) {
        if (i < path.size() && path[i] != '/') {
            cur += path[i];
            continue;
        }
        if (!cur.empty() && ::mkdir(cur.c_str(), 0755) != 0 &&
            errno != EEXIST)
            return false;
        if (i < path.size())
            cur += '/';
    }
    return true;
}

bool
writeFile(const std::string &path, std::string_view content)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
    return true;
}

// Crash-handler state. Plain statics on purpose: the handlers must not
// allocate before the recursion check.
std::atomic<bool> g_dumping{false};
char g_postmortem_dir[512] = "";
bool g_handlers_installed = false;
std::terminate_handler g_prev_terminate = nullptr;

constexpr int kFatalSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE,
                                 SIGILL};

const char *
signalName(int sig)
{
    switch (sig) {
      case SIGSEGV: return "SIGSEGV";
      case SIGABRT: return "SIGABRT";
      case SIGBUS: return "SIGBUS";
      case SIGFPE: return "SIGFPE";
      case SIGILL: return "SIGILL";
    }
    return "signal";
}

void
crashSignalHandler(int sig)
{
    // NOT async-signal-safe: we allocate, lock, and write files. For
    // the black-box that is the right trade — the alternative is no
    // postmortem at all — and the recursion guard turns a handler
    // crash into a plain default-action death.
    if (!g_dumping.exchange(true)) {
        char reason[64];
        std::snprintf(reason, sizeof(reason), "fatal signal %s (%d)",
                      signalName(sig), sig);
        writePostmortem(g_postmortem_dir, reason);
    }
    ::signal(sig, SIG_DFL);
    ::raise(sig);
}

[[noreturn]] void
crashTerminateHandler()
{
    if (!g_dumping.exchange(true))
        writePostmortem(g_postmortem_dir, "std::terminate");
    if (g_prev_terminate != nullptr)
        g_prev_terminate();
    std::abort();
}

}  // namespace

std::string
writePostmortem(const std::string &base_dir, const std::string &reason)
{
    std::timespec ts{};
    std::timespec_get(&ts, TIME_UTC);
    std::tm tm{};
    gmtime_r(&ts.tv_sec, &tm);
    char sub[96];
    std::snprintf(sub, sizeof(sub),
                  "postmortem-%04d%02d%02d-%02d%02d%02d-%d",
                  tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday,
                  tm.tm_hour, tm.tm_min, tm.tm_sec,
                  static_cast<int>(::getpid()));
    const std::string dir =
        (base_dir.empty() ? std::string(".") : base_dir) + "/" + sub;
    if (!mkdirRecursive(dir))
        return "";

    auto &freg = fault::FaultRegistry::global();
    const std::string schedule = freg.scheduleString();

    std::string manifest;
    manifest += "reason: " + reason + "\n";
    char line[128];
    std::snprintf(line, sizeof(line), "pid: %d\n",
                  static_cast<int>(::getpid()));
    manifest += line;
    std::snprintf(line, sizeof(line),
                  "time_utc: %04d-%02d-%02dT%02d:%02d:%02dZ\n",
                  tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday,
                  tm.tm_hour, tm.tm_min, tm.tm_sec);
    manifest += line;
    std::snprintf(line, sizeof(line), "fault_fires: %llu\n",
                  static_cast<unsigned long long>(freg.totalFires()));
    manifest += line;
    manifest += "fault_schedule: " +
                (schedule.empty() ? std::string("(none)") : schedule) +
                "\n";
    const bool prof_armed = prof::Profiler::global().running();
    manifest += "files: stats.json trace.json slowops.json faults.txt "
                "log_tail.txt";
    if (prof_armed)
        manifest += " profile.txt";
    manifest += "\n";
    writeFile(dir + "/MANIFEST.txt", manifest);

    writeFile(dir + "/stats.json",
              stats::StatsRegistry::global().snapshot().toJson());
    writeFile(dir + "/trace.json",
              trace::TraceRegistry::global().exportJson());
    writeFile(dir + "/slowops.json", renderSlowOpsJson());

    // Whatever the sampler has collected up to the crash. Symbolization
    // allocates, but by this point we are already off the signal-unsafe
    // deep end (the other dumps allocate too) — a postmortem is
    // best-effort by design.
    if (prof_armed)
        writeFile(dir + "/profile.txt",
                  prof::Profiler::global().collectFolded());

    // faults.txt replays with: PRISM_FAULTS="$(head -1 faults.txt)"
    std::string faults = schedule + "\n";
    std::snprintf(line, sizeof(line), "# fires=%llu\n",
                  static_cast<unsigned long long>(freg.totalFires()));
    faults += line;
    writeFile(dir + "/faults.txt", faults);

    std::string tail;
    for (const auto &l : log::Logger::global().tail()) {
        tail += l;
        tail += '\n';
    }
    writeFile(dir + "/log_tail.txt", tail);
    return dir;
}

void
installCrashHandlers(const std::string &base_dir)
{
    std::snprintf(g_postmortem_dir, sizeof(g_postmortem_dir), "%s",
                  base_dir.c_str());
    if (g_handlers_installed)
        return;
    g_handlers_installed = true;
    g_prev_terminate = std::set_terminate(crashTerminateHandler);
    struct sigaction sa{};
    sa.sa_handler = crashSignalHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    for (int sig : kFatalSignals)
        ::sigaction(sig, &sa, nullptr);
}

}  // namespace prism::obs
