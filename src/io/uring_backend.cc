#include "io/uring_backend.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/clock.h"
#include "common/logging.h"
#include "common/trace.h"

#if PRISM_HAVE_URING
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace prism::io {

#if PRISM_HAVE_URING

namespace {

// Raw syscall wrappers — liburing is deliberately not a dependency.
// On exotic libcs without the __NR constants the wrappers fail with
// ENOSYS, so the probe reports "unavailable" and everything falls back
// to the POSIX backend.
int
sysIoUringSetup(unsigned entries, struct io_uring_params *p)
{
#ifdef __NR_io_uring_setup
    return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
#else
    (void)entries;
    (void)p;
    errno = ENOSYS;
    return -1;
#endif
}

int
sysIoUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                unsigned flags)
{
#ifdef __NR_io_uring_enter
    return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                      min_complete, flags, nullptr, 0));
#else
    (void)fd;
    (void)to_submit;
    (void)min_complete;
    (void)flags;
    errno = ENOSYS;
    return -1;
#endif
}

constexpr unsigned kRingEntries = 256;

// The uring backend has no fixed worker count; 8 approximates the
// device-side parallelism of one NVMe namespace for the telemetry
// utilization math (busy ÷ window × channels). Documented as
// approximate in docs/IO_BACKENDS.md.
constexpr int kUringChannels = 8;

}  // namespace

bool
uringAvailable()
{
    static const bool avail = [] {
        struct io_uring_params p;
        std::memset(&p, 0, sizeof(p));
        const int fd = sysIoUringSetup(4, &p);
        if (fd < 0)
            return false;
        ::close(fd);
        return true;
    }();
    return avail;
}

UringBackend::UringBackend(const FileBackendOptions &opts)
    : FileBackendBase(opts, kUringChannels)
{
    struct io_uring_params p;
    std::memset(&p, 0, sizeof(p));
    ring_fd_ = sysIoUringSetup(kRingEntries, &p);
    if (ring_fd_ < 0)
        fatal("io_uring_setup: %s (use the posix backend)",
              std::strerror(errno));
    sq_entries_ = p.sq_entries;
    cq_entries_ = p.cq_entries;

    sq_ring_bytes_ = p.sq_off.array + p.sq_entries * sizeof(unsigned);
    cq_ring_bytes_ =
        p.cq_off.cqes + p.cq_entries * sizeof(struct io_uring_cqe);
    single_mmap_ = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap_)
        sq_ring_bytes_ = cq_ring_bytes_ =
            std::max(sq_ring_bytes_, cq_ring_bytes_);

    sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_,
                      IORING_OFF_SQ_RING);
    if (sq_ring_ == MAP_FAILED)
        fatal("mmap io_uring SQ ring: %s", std::strerror(errno));
    if (single_mmap_) {
        cq_ring_ = sq_ring_;
    } else {
        cq_ring_ = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                          MAP_SHARED | MAP_POPULATE, ring_fd_,
                          IORING_OFF_CQ_RING);
        if (cq_ring_ == MAP_FAILED)
            fatal("mmap io_uring CQ ring: %s", std::strerror(errno));
    }
    sqes_bytes_ = p.sq_entries * sizeof(struct io_uring_sqe);
    sqes_ = static_cast<struct io_uring_sqe *>(
        ::mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED)
        fatal("mmap io_uring SQEs: %s", std::strerror(errno));

    auto *sqr = static_cast<char *>(sq_ring_);
    sq_head_ = reinterpret_cast<std::atomic<unsigned> *>(sqr + p.sq_off.head);
    sq_tail_ = reinterpret_cast<std::atomic<unsigned> *>(sqr + p.sq_off.tail);
    sq_mask_ = reinterpret_cast<unsigned *>(sqr + p.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned *>(sqr + p.sq_off.array);
    auto *cqr = static_cast<char *>(cq_ring_);
    cq_head_ = reinterpret_cast<std::atomic<unsigned> *>(cqr + p.cq_off.head);
    cq_tail_ = reinterpret_cast<std::atomic<unsigned> *>(cqr + p.cq_off.tail);
    cq_mask_ = reinterpret_cast<unsigned *>(cqr + p.cq_off.ring_mask);
    cqes_ = reinterpret_cast<struct io_uring_cqe *>(cqr + p.cq_off.cqes);

    reaper_ = std::thread([this] { reaperLoop(); });
}

UringBackend::~UringBackend()
{
    stop_.store(true, std::memory_order_release);
    {
        // Wake the reaper (possibly blocked in io_uring_enter) with a
        // NOP whose sentinel user_data = 0 it discards.
        std::lock_guard<std::mutex> lock(sq_mu_);
        struct io_uring_sqe *sqe = nextSqe();
        sqe->opcode = IORING_OP_NOP;
        sqe->user_data = 0;
        const unsigned tail = sq_tail_->load(std::memory_order_relaxed);
        sq_array_[tail & *sq_mask_] =
            static_cast<unsigned>(sqe - sqes_);
        sq_tail_->store(tail + 1, std::memory_order_release);
        pending_sqes_++;
        flushSq();
    }
    reaper_.join();
    if (sqes_ != nullptr)
        ::munmap(sqes_, sqes_bytes_);
    if (cq_ring_ != nullptr && cq_ring_ != sq_ring_)
        ::munmap(cq_ring_, cq_ring_bytes_);
    if (sq_ring_ != nullptr)
        ::munmap(sq_ring_, sq_ring_bytes_);
    if (ring_fd_ >= 0)
        ::close(ring_fd_);
}

struct io_uring_sqe *
UringBackend::nextSqe()
{
    // sq_mu_ held. The kernel consumes SQEs synchronously during
    // io_uring_enter (no SQPOLL), so flushing always frees slots.
    while (true) {
        const unsigned head = sq_head_->load(std::memory_order_acquire);
        const unsigned tail = sq_tail_->load(std::memory_order_relaxed);
        if (tail - head < sq_entries_) {
            struct io_uring_sqe *sqe = &sqes_[tail & *sq_mask_];
            std::memset(sqe, 0, sizeof(*sqe));
            return sqe;
        }
        flushSq();
    }
}

void
UringBackend::flushSq()
{
    // sq_mu_ held.
    while (pending_sqes_ > 0) {
        const int ret = sysIoUringEnter(ring_fd_, pending_sqes_, 0, 0);
        if (ret < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EBUSY) {
                // CQ backpressure: give the reaper a moment to drain.
                delayFor(10'000);
                continue;
            }
            fatal("io_uring_enter(submit): %s", std::strerror(errno));
        }
        pending_sqes_ -= static_cast<unsigned>(ret);
    }
}

Status
UringBackend::submit(std::span<const IoRequest> batch)
{
    PRISM_TRACE_SPAN_VAR(submit_span, "ssd.submit");
    submit_span.arg(PRISM_TRACE_NID("reqs"), batch.size());
    const Status vst = validateBatch(batch);
    if (!vst.isOk())
        return vst;

    std::vector<IoFault> faults;
    ins_.decideFaults(batch, faults);

    const uint64_t now = nowNs();
    const uint64_t depth =
        inflight_.fetch_add(batch.size(), std::memory_order_acq_rel) +
        batch.size();
    ins_.inflight->add(static_cast<int64_t>(batch.size()));
    DeviceInstruments::noteDepth(stats_, depth);

    std::vector<IoCompletion> immediate;
    bool woke_reaper = false;
    {
        std::lock_guard<std::mutex> lock(sq_mu_);
        for (size_t i = 0; i < batch.size(); i++) {
            const IoRequest &req = batch[i];
            const Status forced =
                faults.empty() ? Status::ok() : faults[i].status;
            const uint32_t xfer =
                faults.empty() ? req.length : faults[i].xfer;
            const uint64_t extra_ns =
                faults.empty() ? 0 : faults[i].extra_ns;
            // Bytes/ops are accounted at submission (matching the
            // simulator), with the fault-adjusted transfer size.
            ins_.account(stats_, req, xfer);

            if (xfer == 0) {
                // Injected error with no transfer: never reaches the
                // kernel. Latency faults ride through the deferred
                // list; a NOP CQE nudges the reaper to look at it.
                IoCompletion c;
                c.user_data = req.user_data;
                c.status = forced;
                c.latency_ns = extra_ns;
                if (extra_ns > 0) {
                    {
                        std::lock_guard<std::mutex> dl(deferred_mu_);
                        deferred_.emplace_back(now + extra_ns, c);
                    }
                    struct io_uring_sqe *nop = nextSqe();
                    nop->opcode = IORING_OP_NOP;
                    nop->user_data = 0;
                    const unsigned tail =
                        sq_tail_->load(std::memory_order_relaxed);
                    sq_array_[tail & *sq_mask_] =
                        static_cast<unsigned>(nop - sqes_);
                    sq_tail_->store(tail + 1, std::memory_order_release);
                    pending_sqes_++;
                    woke_reaper = true;
                } else {
                    ins_.latency->record(c.latency_ns);
                    immediate.push_back(c);
                }
                continue;
            }

            auto *ctx = new OpCtx;
            ctx->user_data = req.user_data;
            ctx->submit_ns = now;
            ctx->expected = xfer;
            ctx->is_write = req.op == IoRequest::Op::kWrite;
            ctx->forced = forced;
            ctx->extra_ns = extra_ns;

            struct io_uring_sqe *sqe = nextSqe();
            sqe->fd = fd_;
            sqe->off = req.offset;
            sqe->len = xfer;
            if (req.op == IoRequest::Op::kWrite) {
                sqe->opcode = IORING_OP_WRITE;
                sqe->addr = reinterpret_cast<uint64_t>(req.src);
            } else {
                sqe->opcode = IORING_OP_READ;
                sqe->addr = reinterpret_cast<uint64_t>(req.buf);
            }
            sqe->user_data = reinterpret_cast<uint64_t>(ctx);
            const unsigned tail =
                sq_tail_->load(std::memory_order_relaxed);
            sq_array_[tail & *sq_mask_] =
                static_cast<unsigned>(sqe - sqes_);
            sq_tail_->store(tail + 1, std::memory_order_release);
            pending_sqes_++;
        }
        flushSq();
    }
    (void)woke_reaper;
    deliver(immediate);
    return Status::ok();
}

size_t
UringBackend::drainKernelCq(std::vector<IoCompletion> &out)
{
    const uint64_t now = nowNs();
    unsigned head = cq_head_->load(std::memory_order_relaxed);
    size_t reaped = 0;
    bool synced_write = false;
    while (head != cq_tail_->load(std::memory_order_acquire)) {
        const struct io_uring_cqe *cqe = &cqes_[head & *cq_mask_];
        const uint64_t ud = cqe->user_data;
        const int32_t res = cqe->res;
        head++;
        reaped++;
        if (ud == 0)
            continue;  // wake-up NOP
        auto *ctx = reinterpret_cast<OpCtx *>(ud);
        Status st = ctx->forced;
        if (st.isOk()) {
            if (res < 0) {
                st = Status::ioError(std::strerror(-res));
                ins_.countError();
            } else if (static_cast<uint32_t>(res) < ctx->expected) {
                st = Status::ioError("short I/O");
                ins_.countError();
            } else if (sync_each_write_ && ctx->is_write &&
                       !synced_write) {
                if (::fdatasync(fd_) != 0) {
                    st = Status::ioError(std::strerror(errno));
                    ins_.countError();
                } else {
                    synced_write = true;  // one sync covers this drain
                }
            }
        }
        IoCompletion c;
        c.user_data = ctx->user_data;
        c.status = st;
        c.latency_ns = now - ctx->submit_ns + ctx->extra_ns;
        ins_.dev_busy_ns->add(now - ctx->submit_ns);
        if (ctx->extra_ns > 0) {
            std::lock_guard<std::mutex> dl(deferred_mu_);
            deferred_.emplace_back(now + ctx->extra_ns, c);
        } else {
            ins_.latency->record(c.latency_ns);
            out.push_back(c);
        }
        delete ctx;
    }
    cq_head_->store(head, std::memory_order_release);
    return reaped;
}

void
UringBackend::reaperLoop()
{
    trace::TraceRegistry::global().setThreadName(
        "io" + std::to_string(ins_.dev) + "-uring");
    std::vector<IoCompletion> out;
    while (true) {
        drainKernelCq(out);

        const bool stopping = stop_.load(std::memory_order_acquire);
        uint64_t next_due = 0;
        {
            std::lock_guard<std::mutex> dl(deferred_mu_);
            const uint64_t now = nowNs();
            for (size_t i = 0; i < deferred_.size();) {
                if (stopping || deferred_[i].first <= now) {
                    ins_.latency->record(deferred_[i].second.latency_ns);
                    out.push_back(deferred_[i].second);
                    deferred_[i] = deferred_.back();
                    deferred_.pop_back();
                } else {
                    if (next_due == 0 || deferred_[i].first < next_due)
                        next_due = deferred_[i].first;
                    i++;
                }
            }
        }
        deliver(out);

        if (stopping) {
            // Callers quiesce before destruction; sweep any straggler
            // CQEs so their contexts are freed, then exit.
            drainKernelCq(out);
            deliver(out);
            return;
        }
        if (next_due != 0) {
            const uint64_t now = nowNs();
            delayFor(std::min<uint64_t>(
                next_due > now ? next_due - now : 1, 100'000));
            continue;
        }
        const int ret =
            sysIoUringEnter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS);
        if (ret < 0 && errno != EINTR && errno != EAGAIN &&
            errno != EBUSY && errno != ETIME)
            fatal("io_uring_enter(wait): %s", std::strerror(errno));
    }
}

#else  // !PRISM_HAVE_URING

bool
uringAvailable()
{
    return false;
}

UringBackend::UringBackend(const FileBackendOptions &opts)
    : FileBackendBase(opts, 1)
{
    fatal("io_uring backend not compiled in on this platform");
}

Status
UringBackend::submit(std::span<const IoRequest> batch)
{
    (void)batch;
    return Status::ioError("io_uring backend not available");
}

#endif  // PRISM_HAVE_URING

}  // namespace prism::io
