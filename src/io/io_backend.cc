#include "io/io_backend.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

#include "common/clock.h"
#include "common/fault.h"
#include "common/log.h"
#include "common/logging.h"
#include "io/file_backend.h"
#include "io/uring_backend.h"

namespace prism::io {

namespace {
/** Process-wide device numbering across all backend kinds. */
std::atomic<int> g_device_seq{0};
}  // namespace

DeviceInstruments::DeviceInstruments(int channels)
{
    dev = g_device_seq.fetch_add(1, std::memory_order_relaxed);
    auto &reg = stats::StatsRegistry::global();
    bytes_read = &reg.counter("sim.ssd.bytes_read", "bytes");
    bytes_written = &reg.counter("sim.ssd.bytes_written", "bytes");
    read_ops = &reg.counter("sim.ssd.read_ops", "ops");
    write_ops = &reg.counter("sim.ssd.write_ops", "ops");
    io_errors = &reg.counter("sim.ssd.io_errors", "ops");
    inflight = &reg.gauge("sim.ssd.inflight", "reqs");
    latency = &reg.histogram("sim.ssd.latency_ns", "ns");
    const std::string devp = "sim.ssd." + std::to_string(dev) + ".";
    dev_bytes_read = &reg.counter(devp + "bytes_read", "bytes");
    dev_bytes_written = &reg.counter(devp + "bytes_written", "bytes");
    dev_busy_ns = &reg.counter(devp + "busy_ns", "ns");
    dev_io_errors = &reg.counter(devp + "io_errors", "ops");
    reg.gauge(devp + "channels", "channels")
        .set(static_cast<int64_t>(std::max(1, channels)));
    auto &freg = fault::FaultRegistry::global();
    const std::string faultp = "ssd." + std::to_string(dev) + ".";
    fs_io_error = freg.siteId(faultp + "io_error");
    fs_torn_write = freg.siteId(faultp + "torn_write");
    fs_latency = freg.siteId(faultp + "latency");
    fs_dropout = freg.siteId(faultp + "dropout");
}

bool
DeviceInstruments::healthy() const
{
    const uint64_t until = dropout_until.load(std::memory_order_relaxed);
    return until == 0 || nowNs() >= until;
}

void
DeviceInstruments::setDropout(bool on)
{
    dropout_until.store(on ? UINT64_MAX : 0, std::memory_order_relaxed);
}

void
DeviceInstruments::countError()
{
    io_errors->inc();
    dev_io_errors->inc();
}

bool
DeviceInstruments::decideFaults(std::span<const IoRequest> batch,
                                std::vector<IoFault> &out)
{
    if (!fault::enabled() &&
        dropout_until.load(std::memory_order_relaxed) == 0)
        return false;
    out.resize(batch.size());
    auto &freg = fault::FaultRegistry::global();
    for (size_t i = 0; i < batch.size(); i++) {
        const auto &req = batch[i];
        IoFault &f = out[i];
        f.status = Status::ok();
        f.xfer = req.length;
        f.extra_ns = 0;
        const bool is_write = req.op == IoRequest::Op::kWrite;
        uint64_t payload = 0;
        if (is_write && fault::enabled() &&
            freg.shouldFire(fs_dropout, &payload)) {
            dropout_until.store(payload == 0 ? UINT64_MAX
                                             : nowNs() + payload,
                                std::memory_order_relaxed);
        }
        if (is_write && !healthy()) {
            f.status = Status::ioError("device dropout");
            f.xfer = 0;
        } else if (fault::enabled() && freg.shouldFire(fs_io_error)) {
            f.status = Status::ioError("injected I/O error");
            f.xfer = 0;
        } else if (is_write && fault::enabled() &&
                   freg.shouldFire(fs_torn_write, &payload)) {
            // Torn multi-page write: a prefix reaches the medium
            // (payload bytes, default half the request rounded to 8),
            // then the request errors out.
            f.status = Status::ioError("injected torn write");
            f.xfer = payload != 0
                         ? static_cast<uint32_t>(
                               std::min<uint64_t>(payload, req.length))
                         : (req.length / 2) & ~7u;
        }
        if (fault::enabled() && freg.shouldFire(fs_latency, &payload))
            f.extra_ns = payload != 0 ? payload : 2'000'000;
        if (!f.status.isOk())
            countError();
    }
    return true;
}

Status
DeviceInstruments::syncFaultCheck(bool is_write)
{
    if (is_write && !healthy())
        return Status::ioError("device dropout");
    if (fault::enabled() &&
        fault::FaultRegistry::global().shouldFire(fs_io_error)) {
        countError();
        return Status::ioError("injected I/O error");
    }
    return Status::ok();
}

void
DeviceInstruments::account(IoDeviceStats &s, const IoRequest &req,
                           uint32_t xfer)
{
    if (req.op == IoRequest::Op::kWrite) {
        s.bytes_written.fetch_add(xfer, std::memory_order_relaxed);
        s.write_ops.fetch_add(1, std::memory_order_relaxed);
        bytes_written->add(xfer);
        dev_bytes_written->add(xfer);
        write_ops->inc();
    } else {
        s.bytes_read.fetch_add(xfer, std::memory_order_relaxed);
        s.read_ops.fetch_add(1, std::memory_order_relaxed);
        bytes_read->add(xfer);
        dev_bytes_read->add(xfer);
        read_ops->inc();
    }
}

void
DeviceInstruments::noteDepth(IoDeviceStats &s, uint64_t depth)
{
    uint64_t prev = s.max_queue_depth.load(std::memory_order_relaxed);
    while (depth > prev &&
           !s.max_queue_depth.compare_exchange_weak(
               prev, depth, std::memory_order_relaxed)) {
    }
}

const char *
backendKindName(IoBackendKind kind)
{
    switch (kind) {
      case IoBackendKind::kSim: return "sim";
      case IoBackendKind::kPosix: return "posix";
      case IoBackendKind::kUring: return "uring";
    }
    return "sim";
}

IoBackendKind
resolveBackendKind(std::string_view selector)
{
    std::string sel(selector);
    if (sel.empty()) {
        const char *env = std::getenv("PRISM_IO_BACKEND");
        if (env != nullptr)
            sel = env;
    }
    if (sel.empty() || sel == "sim")
        return IoBackendKind::kSim;
    if (sel == "posix")
        return IoBackendKind::kPosix;
    if (sel == "uring")
        return IoBackendKind::kUring;
    if (sel == "auto")
        return uringAvailable() ? IoBackendKind::kUring
                                : IoBackendKind::kPosix;
    fatal("unknown I/O backend \"%s\" (want sim|posix|uring|auto)",
          sel.c_str());
    return IoBackendKind::kSim;
}

std::string
resolveBackendDir(std::string_view dir)
{
    if (!dir.empty())
        return std::string(dir);
    const char *env = std::getenv("PRISM_IO_DIR");
    if (env != nullptr && env[0] != '\0')
        return env;
    return "/tmp/prism-io";
}

std::shared_ptr<IoBackend>
createFileBackend(IoBackendKind kind, const FileBackendOptions &opts)
{
    PRISM_CHECK(kind != IoBackendKind::kSim &&
                "sim devices are constructed directly (sim::SsdDevice)");
    if (kind == IoBackendKind::kUring) {
        if (uringAvailable())
            return std::make_shared<UringBackend>(opts);
        PRISM_LOG_WARN("io.uring_fallback",
                       "io_uring unavailable on this kernel; falling "
                       "back to the posix backend for %s",
                       opts.path.c_str());
    }
    return std::make_shared<PosixFileBackend>(opts);
}

std::vector<std::shared_ptr<IoBackend>>
createFileBackendSet(IoBackendKind kind, const std::string &dir, int count,
                     uint64_t capacity_bytes)
{
    makeBackendDir(dir);
    std::vector<std::shared_ptr<IoBackend>> out;
    static std::atomic<int> file_seq{0};
    for (int i = 0; i < count; i++) {
        FileBackendOptions o;
        o.path = dir + "/prism-ssd-" +
                 std::to_string(static_cast<long>(::getpid())) + "-" +
                 std::to_string(file_seq.fetch_add(
                     1, std::memory_order_relaxed)) +
                 ".img";
        o.capacity_bytes = capacity_bytes;
        out.push_back(createFileBackend(kind, o));
    }
    return out;
}

}  // namespace prism::io
