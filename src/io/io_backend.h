/**
 * @file
 * IoBackend — the device contract behind every Value Storage.
 *
 * Prism's data path only ever talks to a device through an io_uring-like
 * queue pair: submit a batch of read/write requests, reap completions.
 * This header extracts that contract out of the simulator so the same
 * ValueStorage / ChunkWriter / GC / ReadBatcher code runs against three
 * interchangeable implementations (docs/IO_BACKENDS.md):
 *
 *   - prism::sim::SsdDevice   — the timing-modelled simulator (default)
 *   - prism::io::UringBackend — real files via raw io_uring syscalls,
 *                               behind a runtime capability probe
 *   - prism::io::PosixFileBackend — real files via a pread/pwrite
 *                               worker pool (works on any kernel)
 *
 * ## Contract
 *
 * Thread safety: every method may be called from any thread, and
 * submit()/pollCompletions()/waitCompletions() may race freely. A
 * typical deployment has many submitters (client threads, the chunk
 * writer, GC) and one reaper (the Value Storage completion thread), but
 * the backend must not assume a single reaper.
 *
 * Completion ordering: NONE is guaranteed, neither across batches nor
 * within one batch. Callers identify requests solely by `user_data`,
 * which is returned verbatim in the completion. Every accepted request
 * produces exactly one completion; a submit() that returns an error
 * produced no completions for any request of that batch.
 *
 * Data lifetime: request buffers (`buf`/`src`) must stay valid until the
 * request's completion has been reaped. The simulator copies data at
 * submission; the file backends DMA/read into the caller's buffer from a
 * worker or the kernel, so this is a hard requirement, not a formality.
 *
 * Error model: per-request failures (injected faults, a dropped-out
 * device, a real syscall error) are reported in the *completion* status,
 * never as a submit() error. submit() itself fails only for malformed
 * requests (zero length, beyond capacity), in which case the whole batch
 * is rejected atomically. Reads that complete with an error transferred
 * nothing; torn writes transferred a prefix (see common/fault.h).
 *
 * Durability: a completed write is durable to the *backend's* medium
 * contract — the simulator's backing pages, or the file's page cache.
 * flush() forces file-backed data down (fdatasync); the simulator's is a
 * no-op. Prism's crash-consistency story (docs/FAULTS.md) is built on
 * the simulator's completion-equals-durable model.
 *
 * Observability: all backends register the same process-wide stats
 * families ("sim.ssd.*" — the prefix is historical; it covers every
 * IoBackend device), per-device series ("sim.ssd.<n>.*") and fault
 * sites ("ssd.<n>.io_error" / "torn_write" / "latency" / "dropout"),
 * via DeviceInstruments below. Telemetry, the error budget and the
 * fault harness therefore observe real files exactly like simulated
 * devices.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.h"
#include "common/status.h"

namespace prism::io {

/** One submission-queue entry. */
struct IoRequest {
    enum class Op : uint8_t { kRead, kWrite };

    Op op = Op::kRead;
    uint64_t offset = 0;       ///< byte offset on the device
    uint32_t length = 0;       ///< transfer size in bytes
    void *buf = nullptr;       ///< destination (reads)
    const void *src = nullptr; ///< source (writes)
    uint64_t user_data = 0;    ///< opaque tag returned in the completion
};

/** One completion-queue entry. */
struct IoCompletion {
    uint64_t user_data = 0;
    Status status;
    uint64_t latency_ns = 0;   ///< submit-to-complete latency
};

/** Host-visible I/O counters (used for the WAF experiment, Fig. 12). */
struct IoDeviceStats {
    std::atomic<uint64_t> bytes_read{0};
    std::atomic<uint64_t> bytes_written{0};
    std::atomic<uint64_t> read_ops{0};
    std::atomic<uint64_t> write_ops{0};
    std::atomic<uint64_t> max_queue_depth{0};
};

/** Queue-pair device interface (contract in the file header). */
class IoBackend {
  public:
    static constexpr uint64_t kBlockSize = 4096;

    virtual ~IoBackend() = default;

    /** Submit a batch (the io_uring_submit analogue). */
    virtual Status submit(std::span<const IoRequest> batch) = 0;

    /** Submit a single request. */
    Status submit(const IoRequest &req) { return submit({&req, 1}); }

    /**
     * Drain up to @p max completions into @p out (appended).
     * @return number of completions reaped (may be 0).
     */
    virtual size_t pollCompletions(std::vector<IoCompletion> &out,
                                   size_t max) = 0;

    /**
     * Block until at least one completion is available or @p timeout_us
     * elapses, then drain like pollCompletions.
     */
    virtual size_t waitCompletions(std::vector<IoCompletion> &out,
                                   size_t max, uint64_t timeout_us) = 0;

    /** Synchronous read helper (blocking pread analogue). */
    virtual Status readSync(uint64_t offset, void *buf, uint32_t length) = 0;

    /** Synchronous write helper. */
    virtual Status writeSync(uint64_t offset, const void *src,
                             uint32_t length) = 0;

    /** Force completed writes down to the medium (fdatasync analogue). */
    virtual Status flush() { return Status::ok(); }

    virtual uint64_t capacity() const = 0;

    /** Number of submitted-but-not-reaped requests. */
    virtual uint64_t inflight() const = 0;

    /** True when the device has no in-flight requests (idle selection). */
    bool isIdle() const { return inflight() == 0; }

    /**
     * True when the device accepts writes. A dropout (setDropout or the
     * "ssd.<n>.dropout" fault site) fails every write with an I/O-error
     * completion until it ends; reads still succeed, like a drive whose
     * write path died but whose media is readable.
     */
    virtual bool healthy() const = 0;

    /** Force (or clear) a dropout. Fault payload = duration in ns. */
    virtual void setDropout(bool on) = 0;

    /** Process-wide device number (the <n> in sim.ssd.<n>.* metrics). */
    virtual int deviceNumber() const = 0;

    virtual IoDeviceStats &stats() = 0;

    /** Backend kind for logs and bench rows: "sim", "posix", "uring". */
    virtual std::string_view kind() const = 0;
};

/** Per-request injected-fault decision (see DeviceInstruments). */
struct IoFault {
    Status status;         ///< completion status (ok = no fault)
    uint32_t xfer = 0;     ///< bytes actually transferred
    uint64_t extra_ns = 0; ///< added service latency
};

/**
 * The shared observability kit every backend construction claims: a
 * process-wide device number, the registry counter families, per-device
 * series, the per-device fault sites, and the dropout state plus the
 * fault-decision pass that consults them. Factoring it here is what
 * keeps the PR-3/4/5 infrastructure (stats, telemetry, fault schedules,
 * error budget) working identically on simulated and real devices.
 */
struct DeviceInstruments {
    /** @param channels published as the "sim.ssd.<n>.channels" gauge —
     *  the denominator telemetry uses for per-device utilization. */
    explicit DeviceInstruments(int channels);

    DeviceInstruments(const DeviceInstruments &) = delete;
    DeviceInstruments &operator=(const DeviceInstruments &) = delete;

    int dev = 0;  ///< process-wide device number

    // Shared-by-name families: totals aggregate across devices.
    stats::Counter *bytes_read;
    stats::Counter *bytes_written;
    stats::Counter *read_ops;
    stats::Counter *write_ops;
    stats::Counter *io_errors;
    stats::Gauge *inflight;
    stats::LatencyStat *latency;

    // Per-device series ("sim.ssd.<n>.*"): telemetry derives per-device
    // bandwidth and utilization from these (busy ÷ window × channels).
    stats::Counter *dev_bytes_read;
    stats::Counter *dev_bytes_written;
    stats::Counter *dev_busy_ns;
    stats::Counter *dev_io_errors;

    // Per-device fault sites ("ssd.<n>.io_error" etc., common/fault.h);
    // ids interned once here. dropout_until is the monotonic-ns deadline
    // of an active dropout (0 = none, UINT64_MAX = until cleared).
    uint32_t fs_io_error = 0;
    uint32_t fs_torn_write = 0;
    uint32_t fs_latency = 0;
    uint32_t fs_dropout = 0;
    std::atomic<uint64_t> dropout_until{0};

    bool healthy() const;
    void setDropout(bool on);

    /** Count one errored request (family + per-device counters). */
    void countError();

    /**
     * Fault-decision pass over a batch. Cheap no-op (returns false,
     * leaves @p out empty) unless a fault site is armed or a dropout is
     * active. Each request may fail with an error completion (no
     * transfer), tear (prefix transferred, error completion — writes
     * only), or pick up extra service latency. Errors are counted here.
     */
    bool decideFaults(std::span<const IoRequest> batch,
                      std::vector<IoFault> &out);

    /** Fault check for the synchronous helpers (one request, no tear). */
    Status syncFaultCheck(bool is_write);

    /** Account one request's transfer into @p s and the registry. */
    void account(IoDeviceStats &s, const IoRequest &req, uint32_t xfer);

    /** Track a queue-depth high-water mark after adding @p n requests. */
    static void noteDepth(IoDeviceStats &s, uint64_t depth);
};

/** Selectable backend kinds (docs/IO_BACKENDS.md). */
enum class IoBackendKind {
    kSim,    ///< simulated SSD (sim::SsdDevice)
    kPosix,  ///< real file, pread/pwrite worker pool
    kUring,  ///< real file, raw io_uring
};

/**
 * Resolve a backend selector string to a kind. Accepts "sim", "posix",
 * "uring" and "auto" (uring when the kernel supports it, else posix).
 * An empty selector falls back to $PRISM_IO_BACKEND, then to "sim".
 * Unknown selectors abort with a diagnostic.
 */
IoBackendKind resolveBackendKind(std::string_view selector);

/**
 * Resolve a backing-file directory for the real-file backends. An empty
 * @p dir falls back to $PRISM_IO_DIR, then to "/tmp/prism-io".
 */
std::string resolveBackendDir(std::string_view dir);

const char *backendKindName(IoBackendKind kind);

/**
 * Runtime io_uring capability probe: one io_uring_setup syscall,
 * cached. False when the kernel lacks it or seccomp blocks it
 * (ENOSYS/EPERM) — callers fall back to the POSIX backend.
 */
bool uringAvailable();

/** Configuration for the file-backed backends. */
struct FileBackendOptions {
    std::string path;            ///< backing file (created if absent)
    uint64_t capacity_bytes = 0;
    int workers = 4;             ///< POSIX backend I/O threads
    bool sync_each_write = false;///< fdatasync inside every write
};

/**
 * Create a file-backed device of the given kind (kPosix or kUring;
 * kUring falls back to kPosix with a warning when the probe fails).
 */
std::shared_ptr<IoBackend> createFileBackend(IoBackendKind kind,
                                             const FileBackendOptions &opts);

/**
 * Convenience for fixtures: create @p count devices of @p kind backed
 * by files under @p dir (created if needed, names unique per process).
 */
std::vector<std::shared_ptr<IoBackend>>
createFileBackendSet(IoBackendKind kind, const std::string &dir, int count,
                     uint64_t capacity_bytes);

}  // namespace prism::io
