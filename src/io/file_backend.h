/**
 * @file
 * File-backed IoBackend implementations: the shared base (one backing
 * file + the common completion queue) and the POSIX pread/pwrite
 * worker-pool backend that works on any kernel. The io_uring variant
 * derives from the same base in uring_backend.h.
 *
 * Durability: a completed write has reached the OS page cache;
 * FileBackendOptions::sync_each_write adds an fdatasync per write, and
 * flush() forces everything down on demand. See docs/IO_BACKENDS.md.
 */
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "io/io_backend.h"

namespace prism::io {

/** Create @p dir (and parents) if it does not exist. */
void makeBackendDir(const std::string &dir);

/** Common state of the file-backed backends. */
class FileBackendBase : public IoBackend {
  public:
    FileBackendBase(const FileBackendOptions &opts, int channels);
    ~FileBackendBase() override;

    FileBackendBase(const FileBackendBase &) = delete;
    FileBackendBase &operator=(const FileBackendBase &) = delete;

    using IoBackend::submit;

    size_t pollCompletions(std::vector<IoCompletion> &out,
                           size_t max) override;
    size_t waitCompletions(std::vector<IoCompletion> &out, size_t max,
                           uint64_t timeout_us) override;
    Status readSync(uint64_t offset, void *buf, uint32_t length) override;
    Status writeSync(uint64_t offset, const void *src,
                     uint32_t length) override;
    Status flush() override;

    uint64_t capacity() const override { return capacity_; }
    uint64_t inflight() const override {
        return inflight_.load(std::memory_order_acquire);
    }
    bool healthy() const override { return ins_.healthy(); }
    void setDropout(bool on) override { ins_.setDropout(on); }
    int deviceNumber() const override { return ins_.dev; }
    IoDeviceStats &stats() override { return stats_; }

    const std::string &path() const { return path_; }

  protected:
    /** Whole-batch validation; a rejected batch enqueues nothing. */
    Status validateBatch(std::span<const IoRequest> batch) const;

    /** Loop pread/pwrite until @p len transferred; Status on error. */
    Status fullPread(uint64_t offset, void *buf, uint32_t len);
    Status fullPwrite(uint64_t offset, const void *src, uint32_t len);

    /** Push completions to the CQ and wake waiters. */
    void deliver(std::vector<IoCompletion> &batch);

    std::string path_;
    int fd_ = -1;
    uint64_t capacity_ = 0;
    bool sync_each_write_ = false;

    DeviceInstruments ins_;
    IoDeviceStats stats_;
    std::atomic<uint64_t> inflight_{0};

    std::mutex cq_mu_;
    std::condition_variable cq_cv_;
    std::vector<IoCompletion> cq_;
};

/**
 * Thread-pool fallback backend: submit() enqueues to a small worker
 * pool that performs blocking pread/pwrite and delivers completions.
 * Queue-pair semantics (batching, out-of-order completion) match the
 * contract; concurrency is capped by the worker count.
 */
class PosixFileBackend final : public FileBackendBase {
  public:
    explicit PosixFileBackend(const FileBackendOptions &opts);
    ~PosixFileBackend() override;

    using IoBackend::submit;
    Status submit(std::span<const IoRequest> batch) override;
    std::string_view kind() const override { return "posix"; }

  private:
    struct Job {
        IoRequest req;
        Status forced;       ///< injected-fault outcome (ok = none)
        uint32_t xfer = 0;   ///< bytes to actually transfer
        uint64_t extra_ns = 0;
        uint64_t submit_ns = 0;
    };

    void workerLoop(int worker_id);

    std::mutex q_mu_;
    std::condition_variable q_cv_;
    std::deque<Job> queue_;
    std::atomic<bool> stop_{false};
    std::vector<std::thread> workers_;
};

}  // namespace prism::io
