#include "io/file_backend.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/clock.h"
#include "common/logging.h"
#include "common/trace.h"

namespace prism::io {

void
makeBackendDir(const std::string &dir)
{
    std::string path;
    for (size_t i = 0; i <= dir.size(); i++) {
        if (i < dir.size() && dir[i] != '/') {
            path.push_back(dir[i]);
            continue;
        }
        if (i < dir.size())
            path.push_back('/');
        if (path.empty() || path == "/")
            continue;
        if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST)
            fatal("mkdir %s: %s", path.c_str(), std::strerror(errno));
    }
}

FileBackendBase::FileBackendBase(const FileBackendOptions &opts,
                                 int channels)
    : path_(opts.path),
      capacity_((opts.capacity_bytes + kBlockSize - 1) & ~(kBlockSize - 1)),
      sync_each_write_(opts.sync_each_write),
      ins_(channels)
{
    PRISM_CHECK(opts.capacity_bytes > 0);
    PRISM_CHECK(!path_.empty());
    fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ < 0)
        fatal("open %s: %s", path_.c_str(), std::strerror(errno));
    if (::ftruncate(fd_, static_cast<off_t>(capacity_)) != 0)
        fatal("ftruncate %s: %s", path_.c_str(), std::strerror(errno));
}

FileBackendBase::~FileBackendBase()
{
    if (fd_ >= 0)
        ::close(fd_);
}

Status
FileBackendBase::validateBatch(std::span<const IoRequest> batch) const
{
    for (const auto &req : batch) {
        if (req.offset + req.length > capacity_)
            return Status::invalidArgument("I/O beyond device capacity");
        if (req.length == 0)
            return Status::invalidArgument("zero-length I/O");
    }
    return Status::ok();
}

Status
FileBackendBase::fullPread(uint64_t offset, void *buf, uint32_t len)
{
    auto *d = static_cast<uint8_t *>(buf);
    uint32_t done = 0;
    while (done < len) {
        const ssize_t n = ::pread(fd_, d + done, len - done,
                                  static_cast<off_t>(offset + done));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::ioError(std::strerror(errno));
        }
        if (n == 0)
            return Status::ioError("short read");
        done += static_cast<uint32_t>(n);
    }
    return Status::ok();
}

Status
FileBackendBase::fullPwrite(uint64_t offset, const void *src, uint32_t len)
{
    const auto *s = static_cast<const uint8_t *>(src);
    uint32_t done = 0;
    while (done < len) {
        const ssize_t n = ::pwrite(fd_, s + done, len - done,
                                   static_cast<off_t>(offset + done));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::ioError(std::strerror(errno));
        }
        if (n == 0)
            return Status::ioError("short write");
        done += static_cast<uint32_t>(n);
    }
    return Status::ok();
}

void
FileBackendBase::deliver(std::vector<IoCompletion> &batch)
{
    if (batch.empty())
        return;
    {
        std::lock_guard<std::mutex> lock(cq_mu_);
        cq_.insert(cq_.end(), batch.begin(), batch.end());
    }
    inflight_.fetch_sub(batch.size(), std::memory_order_acq_rel);
    ins_.inflight->sub(static_cast<int64_t>(batch.size()));
    cq_cv_.notify_all();
    batch.clear();
}

size_t
FileBackendBase::pollCompletions(std::vector<IoCompletion> &out, size_t max)
{
    std::lock_guard<std::mutex> lock(cq_mu_);
    const size_t n = std::min(max, cq_.size());
    out.insert(out.end(), cq_.begin(), cq_.begin() + static_cast<long>(n));
    cq_.erase(cq_.begin(), cq_.begin() + static_cast<long>(n));
    return n;
}

size_t
FileBackendBase::waitCompletions(std::vector<IoCompletion> &out, size_t max,
                                 uint64_t timeout_us)
{
    std::unique_lock<std::mutex> lock(cq_mu_);
    cq_cv_.wait_for(lock, std::chrono::microseconds(timeout_us),
                    [this] { return !cq_.empty(); });
    const size_t n = std::min(max, cq_.size());
    out.insert(out.end(), cq_.begin(), cq_.begin() + static_cast<long>(n));
    cq_.erase(cq_.begin(), cq_.begin() + static_cast<long>(n));
    return n;
}

Status
FileBackendBase::readSync(uint64_t offset, void *buf, uint32_t length)
{
    if (offset + length > capacity_)
        return Status::invalidArgument("I/O beyond device capacity");
    const Status fault_st = ins_.syncFaultCheck(/*is_write=*/false);
    if (!fault_st.isOk())
        return fault_st;
    const uint64_t t0 = nowNs();
    const Status st = fullPread(offset, buf, length);
    ins_.dev_busy_ns->add(nowNs() - t0);
    if (!st.isOk()) {
        ins_.countError();
        return st;
    }
    IoRequest req;
    req.op = IoRequest::Op::kRead;
    req.length = length;
    ins_.account(stats_, req, length);
    return Status::ok();
}

Status
FileBackendBase::writeSync(uint64_t offset, const void *src, uint32_t length)
{
    if (offset + length > capacity_)
        return Status::invalidArgument("I/O beyond device capacity");
    const Status fault_st = ins_.syncFaultCheck(/*is_write=*/true);
    if (!fault_st.isOk())
        return fault_st;
    const uint64_t t0 = nowNs();
    Status st = fullPwrite(offset, src, length);
    if (st.isOk() && sync_each_write_ && ::fdatasync(fd_) != 0)
        st = Status::ioError(std::strerror(errno));
    ins_.dev_busy_ns->add(nowNs() - t0);
    if (!st.isOk()) {
        ins_.countError();
        return st;
    }
    IoRequest req;
    req.op = IoRequest::Op::kWrite;
    req.length = length;
    ins_.account(stats_, req, length);
    return Status::ok();
}

Status
FileBackendBase::flush()
{
    if (::fdatasync(fd_) != 0)
        return Status::ioError(std::strerror(errno));
    return Status::ok();
}

// ---------------------------------------------------------------------------
// PosixFileBackend

PosixFileBackend::PosixFileBackend(const FileBackendOptions &opts)
    : FileBackendBase(opts, std::max(1, opts.workers))
{
    const int workers = std::max(1, opts.workers);
    workers_.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; i++)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

PosixFileBackend::~PosixFileBackend()
{
    {
        std::lock_guard<std::mutex> lock(q_mu_);
        stop_.store(true, std::memory_order_release);
    }
    q_cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

Status
PosixFileBackend::submit(std::span<const IoRequest> batch)
{
    PRISM_TRACE_SPAN_VAR(submit_span, "ssd.submit");
    submit_span.arg(PRISM_TRACE_NID("reqs"), batch.size());
    const Status vst = validateBatch(batch);
    if (!vst.isOk())
        return vst;

    std::vector<IoFault> faults;
    ins_.decideFaults(batch, faults);

    const uint64_t now = nowNs();
    const uint64_t depth =
        inflight_.fetch_add(batch.size(), std::memory_order_acq_rel) +
        batch.size();
    ins_.inflight->add(static_cast<int64_t>(batch.size()));
    DeviceInstruments::noteDepth(stats_, depth);

    {
        std::lock_guard<std::mutex> lock(q_mu_);
        for (size_t i = 0; i < batch.size(); i++) {
            Job job;
            job.req = batch[i];
            job.forced = faults.empty() ? Status::ok() : faults[i].status;
            job.xfer = faults.empty() ? batch[i].length : faults[i].xfer;
            job.extra_ns = faults.empty() ? 0 : faults[i].extra_ns;
            job.submit_ns = now;
            // Bytes/ops are accounted at submission (matching the
            // simulator), with the fault-adjusted transfer size.
            ins_.account(stats_, job.req, job.xfer);
            queue_.push_back(std::move(job));
        }
    }
    if (batch.size() > 1)
        q_cv_.notify_all();
    else
        q_cv_.notify_one();
    return Status::ok();
}

void
PosixFileBackend::workerLoop(int worker_id)
{
    trace::TraceRegistry::global().setThreadName(
        "io" + std::to_string(ins_.dev) + "-posix-" +
        std::to_string(worker_id));
    std::vector<IoCompletion> done;
    std::unique_lock<std::mutex> lock(q_mu_);
    while (true) {
        if (queue_.empty()) {
            if (stop_.load(std::memory_order_acquire))
                return;
            q_cv_.wait(lock, [this] {
                return stop_.load(std::memory_order_acquire) ||
                       !queue_.empty();
            });
            continue;
        }
        Job job = std::move(queue_.front());
        queue_.pop_front();
        lock.unlock();

        if (job.extra_ns > 0)
            delayFor(job.extra_ns);
        Status st = job.forced;
        const uint64_t t0 = nowNs();
        if (job.xfer > 0) {
            PRISM_TRACE_SPAN("ssd.service");
            Status io_st;
            if (job.req.op == IoRequest::Op::kWrite) {
                io_st = fullPwrite(job.req.offset, job.req.src, job.xfer);
                if (io_st.isOk() && sync_each_write_ &&
                    ::fdatasync(fd_) != 0)
                    io_st = Status::ioError(std::strerror(errno));
            } else {
                io_st = fullPread(job.req.offset, job.req.buf, job.xfer);
            }
            // An injected outcome (torn write) wins over the syscall's;
            // a real failure surfaces when no fault was injected.
            if (st.isOk() && !io_st.isOk()) {
                st = io_st;
                ins_.countError();
            }
        }
        ins_.dev_busy_ns->add(nowNs() - t0);

        IoCompletion c;
        c.user_data = job.req.user_data;
        c.status = st;
        c.latency_ns = nowNs() - job.submit_ns;
        ins_.latency->record(c.latency_ns);
        done.push_back(c);
        deliver(done);

        lock.lock();
    }
}

}  // namespace prism::io
