/**
 * @file
 * io_uring IoBackend: real-file I/O through a raw io_uring queue pair
 * (no liburing dependency — the ring is set up with the
 * io_uring_setup/io_uring_enter syscalls and mmap'd directly).
 *
 * Availability is a *runtime* property: the kernel must be >= 5.6
 * (IORING_OP_READ/WRITE) and the syscalls must not be blocked by
 * seccomp (many container runtimes deny them). uringAvailable() probes
 * once; createFileBackend() falls back to the POSIX backend when the
 * probe fails, and the conformance tests skip. See docs/IO_BACKENDS.md.
 *
 * Injected faults are decided at submission like every backend:
 * error-without-transfer requests never reach the kernel (their error
 * completion is delivered directly), torn writes are submitted with the
 * truncated length, and latency faults defer completion delivery.
 */
#pragma once

#include "io/file_backend.h"

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#define PRISM_HAVE_URING 1
#else
#define PRISM_HAVE_URING 0
#endif

#if PRISM_HAVE_URING
struct io_uring_sqe;
struct io_uring_cqe;
#endif

namespace prism::io {

#if PRISM_HAVE_URING

/** Real-file backend on a raw io_uring queue pair. */
class UringBackend final : public FileBackendBase {
  public:
    explicit UringBackend(const FileBackendOptions &opts);
    ~UringBackend() override;

    using IoBackend::submit;
    Status submit(std::span<const IoRequest> batch) override;
    std::string_view kind() const override { return "uring"; }

  private:
    /** Per-request kernel-side context (sqe user_data points here). */
    struct OpCtx {
        uint64_t user_data = 0;  ///< caller's tag
        uint64_t submit_ns = 0;
        uint32_t expected = 0;   ///< transfer size the sqe asked for
        bool is_write = false;
        Status forced;           ///< injected outcome (ok = none)
        uint64_t extra_ns = 0;   ///< injected completion delay
    };

    void reaperLoop();
    /** Drain the kernel CQ; deliver or defer each completion.
     *  @return number of CQEs consumed. */
    size_t drainKernelCq(std::vector<IoCompletion> &out);
    /** Reserve the next SQE slot, flushing the SQ if full (sq_mu_ held). */
    struct io_uring_sqe *nextSqe();
    /** io_uring_enter wrapper submitting the pending SQ tail. */
    void flushSq();

    int ring_fd_ = -1;
    unsigned sq_entries_ = 0;
    unsigned cq_entries_ = 0;

    void *sq_ring_ = nullptr;
    size_t sq_ring_bytes_ = 0;
    void *cq_ring_ = nullptr;
    size_t cq_ring_bytes_ = 0;
    bool single_mmap_ = false;
    struct io_uring_sqe *sqes_ = nullptr;
    size_t sqes_bytes_ = 0;

    // Mapped ring fields (offsets from io_uring_params).
    std::atomic<unsigned> *sq_head_ = nullptr;
    std::atomic<unsigned> *sq_tail_ = nullptr;
    unsigned *sq_mask_ = nullptr;
    unsigned *sq_array_ = nullptr;
    std::atomic<unsigned> *cq_head_ = nullptr;
    std::atomic<unsigned> *cq_tail_ = nullptr;
    unsigned *cq_mask_ = nullptr;
    struct io_uring_cqe *cqes_ = nullptr;

    std::mutex sq_mu_;           ///< serializes SQE filling + enter
    unsigned pending_sqes_ = 0;  ///< filled but not yet entered
    std::atomic<bool> stop_{false};

    /** Latency-fault completions held until their due time. */
    std::mutex deferred_mu_;
    std::vector<std::pair<uint64_t, IoCompletion>> deferred_;

    std::thread reaper_;
};

#else  // !PRISM_HAVE_URING

/** Stub for platforms without <linux/io_uring.h>; never constructible
 *  (uringAvailable() is false, so the factory picks POSIX). */
class UringBackend final : public FileBackendBase {
  public:
    explicit UringBackend(const FileBackendOptions &opts);
    using IoBackend::submit;
    Status submit(std::span<const IoRequest> batch) override;
    std::string_view kind() const override { return "uring"; }
};

#endif  // PRISM_HAVE_URING

}  // namespace prism::io
