/**
 * @file
 * Segregated-fit allocator for persistent memory.
 *
 * Serves node allocations for the persistent key index and the fixed
 * structures Prism keeps on NVM. Allocation metadata is deliberately
 * volatile: the persistent state is only the region's bump frontier.
 * After a crash, free-list contents are lost and any allocation that is
 * not reachable from a persistent root is leaked (bounded by what was
 * live at the crash); this mirrors the post-crash garbage-collection
 * strategy of PACTree/PMDK-style systems, where recovery walks the
 * reachable structure rather than logging every allocation.
 */
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "pmem/pmem_region.h"

namespace prism::pmem {

/** Size-class allocator over a PmemRegion. Thread-safe. */
class PmemAllocator {
  public:
    /** Smallest size class, bytes (one cache line). */
    static constexpr size_t kMinClass = 64;
    /** Largest size class, bytes. */
    static constexpr size_t kMaxClass = 64 * 1024;
    static constexpr int kNumClasses = 11;  // 64B << 10 == 64KB

    explicit PmemAllocator(PmemRegion &region);

    PmemAllocator(const PmemAllocator &) = delete;
    PmemAllocator &operator=(const PmemAllocator &) = delete;

    /**
     * Allocate @p size bytes (rounded up to a size class).
     * @return region offset, or kNullOff when the region is exhausted.
     */
    POff alloc(size_t size);

    /** Return an allocation of @p size bytes to its size-class pool. */
    void free(POff off, size_t size);

    /**
     * Allocate a large raw extent directly from the bump frontier,
     * bypassing size classes (used for PWB slabs and the HSIT array).
     */
    POff allocRaw(uint64_t bytes);

    /** Bytes handed out (live + freed-to-pool), for space accounting. */
    uint64_t allocatedBytes() const {
        return allocated_bytes_.load(std::memory_order_relaxed);
    }

    PmemRegion &region() { return region_; }

    /** @return the size class index for @p size; -1 if too large. */
    static int classFor(size_t size);

    /** @return the byte size of size class @p cls. */
    static size_t classSize(int cls) { return kMinClass << cls; }

  private:
    struct SizeClass {
        std::mutex mu;
        std::vector<POff> free_list;
        POff slab_cursor = kNullOff;
        POff slab_end = kNullOff;
    };

    PmemRegion &region_;
    std::array<SizeClass, kNumClasses> classes_;
    std::atomic<uint64_t> allocated_bytes_{0};
    stats::Gauge *reg_alloc_bytes_;  ///< process-wide "pmem.alloc_bytes"
};

}  // namespace prism::pmem
