#include "pmem/pmem_region.h"

#include <atomic>
#include <cstring>

#include "common/fault.h"
#include "common/logging.h"
#include "common/thread_util.h"
#include "common/trace.h"

namespace prism::pmem {

PmemRegion::PmemRegion(std::shared_ptr<sim::NvmDevice> device, bool format)
    : device_(std::move(device)),
      base_(device_->raw()),
      staged_(ThreadId::kMaxThreads)
{
    PRISM_CHECK(device_->capacity() > sizeof(RegionHeader));
    auto &reg = stats::StatsRegistry::global();
    reg_flushes_ = &reg.counter("pmem.flushes", "ops");
    reg_fences_ = &reg.counter("pmem.fences", "ops");
    if (format) {
        auto *h = header();
        h->magic = kMagic;
        h->version = 1;
        h->root = kNullOff;
        // The frontier starts past the header, cache-line aligned.
        h->high_water =
            (sizeof(RegionHeader) + kCacheLine - 1) & ~(kCacheLine - 1);
        device_->chargeWrite(sizeof(RegionHeader));
    } else {
        PRISM_CHECK(header()->magic == kMagic && "attach to unformatted region");
    }
}

bool
PmemRegion::isFormatted(const sim::NvmDevice &device)
{
    RegionHeader h;
    std::memcpy(&h, device.raw(), sizeof(h));
    return h.magic == kMagic;
}

void
PmemRegion::flush(const void *addr, size_t len)
{
    // Crash-at-site hook: a fire here models the machine dying before
    // this write-back took effect. The armed callback (the torture
    // harness) captures the durable image via snapshotDurableTo() —
    // which is safe concurrently — and the run continues; nothing in
    // this call is committed at capture time.
    (void)PRISM_FAULT_POINT("pmem.flush");
    flush_count_.fetch_add(1, std::memory_order_relaxed);
    reg_flushes_->inc();
    if (!tracking_.load(std::memory_order_acquire)) {
        // Fast mode: model the clwb write-back cost only.
        device_->chargeWrite(len);
        return;
    }
    const auto off = offsetOf(addr);
    const uint64_t first = off / kCacheLine;
    const uint64_t last = (off + len - 1) / kCacheLine;
    staged_[static_cast<size_t>(ThreadId::self())].ranges.push_back(
        {first, last - first + 1});
}

void
PmemRegion::fence()
{
    fence_count_.fetch_add(1, std::memory_order_relaxed);
    reg_fences_->inc();
    if (!tracking_.load(std::memory_order_acquire))
        return;
    auto &mine = staged_[static_cast<size_t>(ThreadId::self())].ranges;
    if (mine.empty())
        return;
    // Crash-at-site: fires only for fences about to commit staged lines
    // (the interesting durability boundary); see flush() above.
    (void)PRISM_FAULT_POINT("pmem.fence");
    // Traced only in tracking mode, where the fence does real work (the
    // shadow-image commit); fast mode's fence is a counter bump and
    // would just flood the rings with empty events.
    PRISM_TRACE_SPAN_VAR(span, "pmem.fence");
    span.arg(PRISM_TRACE_NID("staged_ranges"), mine.size());
    std::lock_guard<std::mutex> lock(shadow_mu_);
    for (const auto &r : mine)
        commitLines(r);
    mine.clear();
}

void
PmemRegion::commitLines(const LineRange &r)
{
    const uint64_t start = r.first_line * kCacheLine;
    const uint64_t len = r.line_count * kCacheLine;
    PRISM_DCHECK(start + len <= capacity());
    // Word-wise relaxed atomic copy, not memcpy: another thread may be
    // storing into these lines concurrently (its own not-yet-flushed
    // writes to a shared line). Hardware write-back grabs whatever the
    // line holds at that instant; mirror that without a C++ data race.
    auto *dst = reinterpret_cast<uint64_t *>(shadow_.get() + start);
    const auto *src =
        reinterpret_cast<const std::atomic<uint64_t> *>(base_ + start);
    for (uint64_t i = 0; i < len / sizeof(uint64_t); i++)
        dst[i] = src[i].load(std::memory_order_relaxed);
}

void
PmemRegion::setRoot(POff off)
{
    auto *h = header();
    h->root = off;
    persist(&h->root, sizeof(h->root));
}

POff
PmemRegion::advanceHighWater(uint64_t bytes)
{
    bytes = (bytes + kCacheLine - 1) & ~(kCacheLine - 1);
    std::lock_guard<std::mutex> lock(high_water_mu_);
    auto *h = header();
    const uint64_t start = h->high_water;
    if (start + bytes > capacity())
        return kNullOff;
    h->high_water = start + bytes;
    persist(&h->high_water, sizeof(h->high_water));
    return start;
}

void
PmemRegion::enableTracking()
{
    std::lock_guard<std::mutex> lock(shadow_mu_);
    if (tracking_.load(std::memory_order_acquire))
        return;
    shadow_.reset(new uint8_t[capacity()]);
    // Everything present at enable time is considered durable.
    std::memcpy(shadow_.get(), base_, capacity());
    tracking_.store(true, std::memory_order_release);
}

void
PmemRegion::snapshotDurableTo(std::vector<uint8_t> &out)
{
    PRISM_CHECK(tracking_.load(std::memory_order_acquire) &&
                "snapshotDurableTo requires tracking mode");
    std::lock_guard<std::mutex> lock(shadow_mu_);
    out.assign(shadow_.get(), shadow_.get() + capacity());
}

void
PmemRegion::simulateCrash()
{
    PRISM_CHECK(tracking_.load(std::memory_order_acquire) &&
                "simulateCrash requires tracking mode");
    std::lock_guard<std::mutex> lock(shadow_mu_);
    // Unfenced staged lines die with the crash.
    for (auto &s : staged_)
        s.ranges.clear();
    std::memcpy(base_, shadow_.get(), capacity());
}

}  // namespace prism::pmem
