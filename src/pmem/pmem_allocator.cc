#include "pmem/pmem_allocator.h"

#include <bit>

#include "common/logging.h"

namespace prism::pmem {

PmemAllocator::PmemAllocator(PmemRegion &region)
    : region_(region),
      reg_alloc_bytes_(
          &stats::StatsRegistry::global().gauge("pmem.alloc_bytes", "bytes"))
{
}

int
PmemAllocator::classFor(size_t size)
{
    if (size == 0)
        size = 1;
    if (size > kMaxClass)
        return -1;
    const size_t rounded = std::bit_ceil(std::max(size, kMinClass));
    const int cls = std::countr_zero(rounded) -
                    std::countr_zero(kMinClass);
    PRISM_DCHECK(cls >= 0 && cls < kNumClasses);
    return cls;
}

POff
PmemAllocator::alloc(size_t size)
{
    const int cls = classFor(size);
    if (cls < 0) {
        // Oversized: take a raw extent.
        return allocRaw(size);
    }
    const size_t bytes = classSize(cls);
    auto &sc = classes_[static_cast<size_t>(cls)];
    std::lock_guard<std::mutex> lock(sc.mu);
    if (!sc.free_list.empty()) {
        const POff off = sc.free_list.back();
        sc.free_list.pop_back();
        allocated_bytes_.fetch_add(bytes, std::memory_order_relaxed);
        reg_alloc_bytes_->add(static_cast<int64_t>(bytes));
        return off;
    }
    if (sc.slab_cursor == kNullOff || sc.slab_cursor + bytes > sc.slab_end) {
        // Refill the class slab from the persistent bump frontier. The
        // slab tail is leaked on crash; recovery's reachability walk makes
        // that safe (see file comment).
        const uint64_t slab_bytes =
            std::max<uint64_t>(256 * 1024, bytes * 16);
        const POff slab = region_.advanceHighWater(slab_bytes);
        if (slab == kNullOff)
            return kNullOff;
        sc.slab_cursor = slab;
        sc.slab_end = slab + slab_bytes;
    }
    const POff off = sc.slab_cursor;
    sc.slab_cursor += bytes;
    allocated_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    reg_alloc_bytes_->add(static_cast<int64_t>(bytes));
    return off;
}

void
PmemAllocator::free(POff off, size_t size)
{
    PRISM_DCHECK(off != kNullOff);
    const int cls = classFor(size);
    if (cls < 0)
        return;  // raw extents are not recycled
    auto &sc = classes_[static_cast<size_t>(cls)];
    std::lock_guard<std::mutex> lock(sc.mu);
    sc.free_list.push_back(off);
    allocated_bytes_.fetch_sub(classSize(cls), std::memory_order_relaxed);
    reg_alloc_bytes_->sub(static_cast<int64_t>(classSize(cls)));
}

POff
PmemAllocator::allocRaw(uint64_t bytes)
{
    const POff off = region_.advanceHighWater(bytes);
    if (off != kNullOff) {
        allocated_bytes_.fetch_add(bytes, std::memory_order_relaxed);
        reg_alloc_bytes_->add(static_cast<int64_t>(bytes));
    }
    return off;
}

}  // namespace prism::pmem
