/**
 * @file
 * Persistent-memory region: typed access, flush/fence primitives, and a
 * cache-line-granular crash-injection model.
 *
 * The region wraps a sim::NvmDevice and plays the role PMDK's libpmem
 * plays over real Optane. Pointers inside the region are stored as
 * offsets (POff) so that a re-attached region remains valid.
 *
 * Persistence model (tracking mode, used by crash tests):
 *  - Ordinary stores modify the working image only; they are *not*
 *    durable.
 *  - flush(addr, len) stages the covered 64-byte cache lines (clwb
 *    analogue). Staged lines are still not durable.
 *  - fence() makes the calling thread's staged lines durable by copying
 *    them to a shadow "media" image (sfence analogue).
 *  - simulateCrash() discards all non-durable state: the working image is
 *    overwritten with the shadow image. Unflushed and unfenced stores
 *    vanish — the adversarial Optane failure model, which is exactly what
 *    Prism's backward-pointer/dirty-bit protocols must survive.
 *
 * In fast mode (benchmarks), flush/fence only charge DCPMM write timing.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "sim/nvm_device.h"

namespace prism::pmem {

/** Offset-based persistent pointer; 0 is the null value. */
using POff = uint64_t;
inline constexpr POff kNullOff = 0;

/** Cache-line size assumed by the persistence model. */
inline constexpr size_t kCacheLine = 64;

/** On-media region header stored at offset 0. */
struct RegionHeader {
    uint64_t magic;
    uint64_t version;
    POff root;                ///< application root object
    uint64_t high_water;      ///< bump-allocation frontier
};

/**
 * A persistent memory pool over one NVM device.
 *
 * Thread safety: translate/flush/fence/persist are safe from any thread.
 * simulateCrash must be called while application threads are quiesced
 * (the crash-test harness stops them first).
 */
class PmemRegion {
  public:
    static constexpr uint64_t kMagic = 0x5052491534D52ull;

    /**
     * Create or attach to a region on @p device.
     * @param format when true the region is initialized from scratch;
     *               when false an existing header is validated.
     */
    PmemRegion(std::shared_ptr<sim::NvmDevice> device, bool format);

    PmemRegion(const PmemRegion &) = delete;
    PmemRegion &operator=(const PmemRegion &) = delete;

    /** @return true when an already-formatted region lives on @p device. */
    static bool isFormatted(const sim::NvmDevice &device);

    uint64_t capacity() const { return device_->capacity(); }
    sim::NvmDevice &device() { return *device_; }

    /** Translate a persistent offset to a live pointer (null-safe). */
    void *
    translate(POff off)
    {
        return off == kNullOff ? nullptr : base_ + off;
    }

    const void *
    translate(POff off) const
    {
        return off == kNullOff ? nullptr : base_ + off;
    }

    /** Typed translate. */
    template <typename T>
    T *as(POff off) { return static_cast<T *>(translate(off)); }

    template <typename T>
    const T *as(POff off) const {
        return static_cast<const T *>(translate(off));
    }

    /** Offset of a pointer inside the region. */
    POff
    offsetOf(const void *p) const
    {
        if (p == nullptr)
            return kNullOff;
        return static_cast<POff>(static_cast<const uint8_t *>(p) - base_);
    }

    /** @name Persistence primitives (clwb/sfence analogues) */
    ///@{
    /** Stage the cache lines covering [addr, addr+len) for persistence. */
    void flush(const void *addr, size_t len);

    /** Make the calling thread's staged lines durable. */
    void fence();

    /** flush + fence. */
    void
    persist(const void *addr, size_t len)
    {
        flush(addr, len);
        fence();
    }
    ///@}

    /** Charge NVM read timing for a load of @p bytes (semantic reads). */
    void chargeRead(uint64_t bytes) { device_->chargeRead(bytes); }

    /** @name Root object management */
    ///@{
    POff root() const { return header()->root; }
    void setRoot(POff off);
    ///@}

    /** @name Bump allocation frontier (used by PmemAllocator) */
    ///@{
    uint64_t highWater() const { return header()->high_water; }

    /**
     * Atomically advance the frontier by @p bytes (crash-safely persisted).
     * @return starting offset, or kNullOff when the region is full.
     */
    POff advanceHighWater(uint64_t bytes);
    ///@}

    /** @name Crash-injection model */
    ///@{
    /** Switch to tracking mode. Must precede any stores being tested. */
    void enableTracking();

    bool trackingEnabled() const {
        return tracking_.load(std::memory_order_acquire);
    }

    /**
     * Simulated power failure: revert every non-durable cache line.
     * Caller must have stopped all mutator threads.
     */
    void simulateCrash();

    /**
     * Capture the *durable* image (the shadow) at this instant — the
     * state a crash right now would leave behind. Safe against
     * concurrent mutators: fences serialize with the copy, so the image
     * is a consistent power-failure snapshot taken mid-workload.
     */
    void snapshotDurableTo(std::vector<uint8_t> &out);
    ///@}

    /** Flush/fence counters (CPU-efficiency accounting in benches). */
    uint64_t flushCount() const {
        return flush_count_.load(std::memory_order_relaxed);
    }
    uint64_t fenceCount() const {
        return fence_count_.load(std::memory_order_relaxed);
    }

  private:
    struct LineRange {
        uint64_t first_line;
        uint64_t line_count;
    };

    RegionHeader *header() { return reinterpret_cast<RegionHeader *>(base_); }
    const RegionHeader *header() const {
        return reinterpret_cast<const RegionHeader *>(base_);
    }

    /** Apply one staged line range to the shadow image. */
    void commitLines(const LineRange &r);

    std::shared_ptr<sim::NvmDevice> device_;
    uint8_t *base_;

    std::atomic<bool> tracking_{false};
    std::unique_ptr<uint8_t[]> shadow_;   ///< durable "media" image
    std::mutex shadow_mu_;

    std::atomic<uint64_t> flush_count_{0};
    std::atomic<uint64_t> fence_count_{0};
    stats::Counter *reg_flushes_;  ///< process-wide "pmem.flushes"
    stats::Counter *reg_fences_;   ///< process-wide "pmem.fences"

    // Staged-but-unfenced lines, per thread (indexed by ThreadId).
    struct alignas(64) Staged {
        std::vector<LineRange> ranges;
    };
    std::vector<Staged> staged_;

    std::mutex high_water_mu_;
};

}  // namespace prism::pmem
