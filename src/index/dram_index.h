/**
 * @file
 * Volatile ordered index: a sharded std::map behind the KeyIndex
 * interface. Used as the per-shard index of the KVell baseline and as a
 * reference implementation in tests (PacTree must agree with it).
 */
#pragma once

#include <map>
#include <mutex>
#include <shared_mutex>

#include "index/key_index.h"

namespace prism::index {

/** In-DRAM KeyIndex; sharded by the top key byte for write scalability. */
class DramIndex : public KeyIndex {
  public:
    DramIndex() = default;

    InsertResult
    insertOrGet(uint64_t key, uint64_t handle) override
    {
        auto &shard = shards_[shardFor(key)];
        std::unique_lock<std::shared_mutex> lock(shard.mu);
        auto [it, inserted] = shard.map.try_emplace(key, handle);
        return {it->second, inserted};
    }

    std::optional<uint64_t>
    lookup(uint64_t key) const override
    {
        const auto &shard = shards_[shardFor(key)];
        std::shared_lock<std::shared_mutex> lock(shard.mu);
        auto it = shard.map.find(key);
        if (it == shard.map.end())
            return std::nullopt;
        return it->second;
    }

    bool
    remove(uint64_t key) override
    {
        auto &shard = shards_[shardFor(key)];
        std::unique_lock<std::shared_mutex> lock(shard.mu);
        return shard.map.erase(key) > 0;
    }

    size_t
    scan(uint64_t start, size_t count,
         std::vector<std::pair<uint64_t, uint64_t>> &out) const override
    {
        size_t appended = 0;
        // Shards partition the key space by high byte, so visiting shards
        // in order yields globally ordered results.
        for (int s = shardFor(start); s < kShards && appended < count; s++) {
            const auto &shard = shards_[s];
            std::shared_lock<std::shared_mutex> lock(shard.mu);
            for (auto it = shard.map.lower_bound(start);
                 it != shard.map.end() && appended < count; ++it) {
                out.emplace_back(it->first, it->second);
                appended++;
            }
        }
        return appended;
    }

    void
    forEach(const std::function<void(uint64_t, uint64_t)> &fn) const override
    {
        for (int s = 0; s < kShards; s++) {
            const auto &shard = shards_[s];
            std::shared_lock<std::shared_mutex> lock(shard.mu);
            for (const auto &[k, v] : shard.map)
                fn(k, v);
        }
    }

    size_t
    size() const override
    {
        size_t total = 0;
        for (int s = 0; s < kShards; s++) {
            const auto &shard = shards_[s];
            std::shared_lock<std::shared_mutex> lock(shard.mu);
            total += shard.map.size();
        }
        return total;
    }

  private:
    static constexpr int kShards = 256;

    static int shardFor(uint64_t key) {
        return static_cast<int>(key >> 56);
    }

    struct alignas(64) Shard {
        mutable std::shared_mutex mu;
        std::map<uint64_t, uint64_t> map;
    };

    Shard shards_[kShards];
};

}  // namespace prism::index
