#include "index/pactree.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <thread>

#include "common/logging.h"
#include "common/spinlock.h"

namespace prism::index {

using pmem::kNullOff;
using pmem::POff;

PacTree::PacTree(pmem::PmemRegion &region, pmem::PmemAllocator &alloc,
                 POff root_off)
    : region_(region), alloc_(alloc), root_off_(root_off),
      head_leaf_(kNullOff), shards_(new DirShard[kDirShards])
{
}

std::unique_ptr<PacTree>
PacTree::create(pmem::PmemRegion &region, pmem::PmemAllocator &alloc)
{
    const POff root_off = alloc.alloc(sizeof(TreeRoot));
    PRISM_CHECK(root_off != kNullOff);
    std::unique_ptr<PacTree> tree(new PacTree(region, alloc, root_off));

    const POff head = tree->allocLeaf(0);
    PRISM_CHECK(head != kNullOff);
    tree->head_leaf_ = head;
    tree->leaf_count_.store(1, std::memory_order_relaxed);
    tree->dirInsert(0, head);

    auto *root = region.as<TreeRoot>(root_off);
    root->head_leaf = head;
    root->magic = kTreeMagic;
    region.persist(root, sizeof(*root));
    return tree;
}

std::unique_ptr<PacTree>
PacTree::recover(pmem::PmemRegion &region, pmem::PmemAllocator &alloc,
                 POff root_off)
{
    auto *root = region.as<TreeRoot>(root_off);
    PRISM_CHECK(root != nullptr && root->magic == kTreeMagic);
    std::unique_ptr<PacTree> tree(new PacTree(region, alloc, root_off));
    tree->head_leaf_ = root->head_leaf;
    tree->rebuildFromChain();
    return tree;
}

POff
PacTree::allocLeaf(uint64_t low_key)
{
    const POff off = alloc_.alloc(sizeof(Leaf));
    if (off == kNullOff)
        return kNullOff;
    auto *leaf = leafAt(off);
    std::memset(static_cast<void *>(leaf), 0, sizeof(Leaf));
    leaf->low_key = low_key;
    return off;
}

void
PacTree::maybeGrowShift(uint64_t key)
{
    const int desired =
        std::max(0, static_cast<int>(std::bit_width(key)) - kDirShardBits);
    int cur = shard_shift_.load(std::memory_order_acquire);
    if (desired <= cur)
        return;
    // Re-home the whole directory under every shard lock (in index
    // order — concurrent growers cannot deadlock). Rare: grow-only, at
    // most ~56 times over a tree's lifetime.
    std::vector<std::unique_lock<std::shared_mutex>> locks;
    locks.reserve(kDirShards);
    for (int i = 0; i < kDirShards; i++)
        locks.emplace_back(shards_[i].mu);
    cur = shard_shift_.load(std::memory_order_relaxed);
    if (desired <= cur)
        return;  // lost the race to a concurrent grower
    std::map<uint64_t, POff> all;
    for (int i = 0; i < kDirShards; i++) {
        all.insert(shards_[i].leaves.begin(), shards_[i].leaves.end());
        shards_[i].leaves.clear();
    }
    shard_shift_.store(desired, std::memory_order_release);
    for (const auto &[k, off] : all)
        shards_[shardOf(k, desired)].leaves[k] = off;
}

int
PacTree::populatedShards() const
{
    int n = 0;
    for (int i = 0; i < kDirShards; i++) {
        std::shared_lock<std::shared_mutex> lock(shards_[i].mu);
        if (!shards_[i].leaves.empty())
            n++;
    }
    return n;
}

void
PacTree::dirInsert(uint64_t low_key, POff leaf)
{
    maybeGrowShift(low_key);
    while (true) {
        const int shift = shard_shift_.load(std::memory_order_acquire);
        auto &shard = shards_[shardOf(low_key, shift)];
        std::unique_lock<std::shared_mutex> lock(shard.mu);
        // A grower holds every shard lock while it changes the shift,
        // so an unchanged shift here means this is still the right
        // shard for the entry.
        if (shard_shift_.load(std::memory_order_acquire) != shift)
            continue;
        shard.leaves[low_key] = leaf;
        return;
    }
}

void
PacTree::dirErase(uint64_t low_key)
{
    while (true) {
        const int shift = shard_shift_.load(std::memory_order_acquire);
        auto &shard = shards_[shardOf(low_key, shift)];
        std::unique_lock<std::shared_mutex> lock(shard.mu);
        if (shard_shift_.load(std::memory_order_acquire) != shift)
            continue;
        shard.leaves.erase(low_key);
        return;
    }
}

POff
PacTree::dirFind(uint64_t key) const
{
    // Search this key's shard, then fall back to lower shards; the head
    // leaf has low_key 0, so shard 0 is never empty and the loop always
    // terminates with a candidate. A concurrent shift grow only moves
    // entries to lower shard indices, which this scan visits anyway, so
    // a stale shift costs extra probes, never a wrong (higher-low_key)
    // answer.
    const int shift = shard_shift_.load(std::memory_order_acquire);
    for (int s = shardOf(key, shift); s >= 0; s--) {
        auto &shard = shards_[s];
        std::shared_lock<std::shared_mutex> lock(shard.mu);
        auto it = shard.leaves.upper_bound(key);
        if (it == shard.leaves.begin())
            continue;
        --it;
        return it->second;
    }
    return head_leaf_;
}

uint64_t
PacTree::lockLeaf(Leaf *leaf)
{
    while (true) {
        uint64_t v = leaf->version.load(std::memory_order_acquire);
        if (v & 1) {
            cpuRelax();
            continue;
        }
        if (leaf->version.compare_exchange_weak(
                v, v + 1, std::memory_order_acq_rel))
            return v;
    }
}

void
PacTree::unlockLeaf(Leaf *leaf)
{
    // odd -> even, bumping the version so concurrent optimistic readers
    // notice the mutation and retry.
    leaf->version.fetch_add(1, std::memory_order_release);
}

InsertResult
PacTree::insertOrGet(uint64_t key, uint64_t handle)
{
    while (true) {
        POff off = dirFind(key);
        Leaf *leaf = leafAt(off);
        lockLeaf(leaf);
        // The directory can lag behind splits; chase the chain forward to
        // the leaf that actually covers the key. low_key is immutable, so
        // dirFind's lower bound stays valid.
        while (true) {
            const POff next = leaf->next.load(std::memory_order_acquire);
            if (next == kNullOff || key < leafAt(next)->low_key)
                break;
            Leaf *next_leaf = leafAt(next);
            unlockLeaf(leaf);
            leaf = next_leaf;
            off = next;
            lockLeaf(leaf);
        }
        region_.chargeRead(pmem::kCacheLine);

        uint64_t bm = leaf->bitmap.load(std::memory_order_acquire);
        for (uint64_t probe = bm; probe != 0; probe &= probe - 1) {
            const int i = std::countr_zero(probe);
            if (leaf->slots[i].key == key) {
                const uint64_t existing =
                    leaf->slots[i].handle.load(std::memory_order_acquire);
                unlockLeaf(leaf);
                return {existing, false};
            }
        }

        if (std::popcount(bm) == kLeafSlots) {
            splitLeaf(leaf, off);
            unlockLeaf(leaf);
            continue;  // retry against the post-split directory
        }

        const int slot = std::countr_zero(~bm);
        auto &s = leaf->slots[slot];
        s.key = key;
        s.handle.store(handle, std::memory_order_release);
        // Crash ordering: slot contents must be durable before the
        // validity bit that makes them reachable.
        region_.persist(&s, sizeof(s));
        leaf->bitmap.fetch_or(1ull << slot, std::memory_order_acq_rel);
        region_.persist(&leaf->bitmap, sizeof(leaf->bitmap));
        size_.fetch_add(1, std::memory_order_relaxed);
        unlockLeaf(leaf);
        return {handle, true};
    }
}

std::optional<uint64_t>
PacTree::lookup(uint64_t key) const
{
    POff off = dirFind(key);
    const Leaf *leaf = leafAt(off);
    region_.chargeRead(pmem::kCacheLine);
    while (true) {
        const uint64_t v1 = leaf->version.load(std::memory_order_acquire);
        if (v1 & 1) {
            cpuRelax();
            continue;
        }
        const POff next = leaf->next.load(std::memory_order_acquire);
        if (next != kNullOff && key >= leafAt(next)->low_key) {
            leaf = leafAt(next);
            continue;
        }
        const uint64_t bm = leaf->bitmap.load(std::memory_order_acquire);
        std::optional<uint64_t> result;
        for (uint64_t probe = bm; probe != 0; probe &= probe - 1) {
            const int i = std::countr_zero(probe);
            if (leaf->slots[i].key == key) {
                result = leaf->slots[i].handle.load(
                    std::memory_order_acquire);
                break;
            }
        }
        if (leaf->version.load(std::memory_order_acquire) != v1)
            continue;  // raced with a writer; re-read this leaf
        return result;
    }
}

bool
PacTree::remove(uint64_t key)
{
    while (true) {
        POff off = dirFind(key);
        Leaf *leaf = leafAt(off);
        lockLeaf(leaf);
        while (true) {
            const POff next = leaf->next.load(std::memory_order_acquire);
            if (next == kNullOff || key < leafAt(next)->low_key)
                break;
            Leaf *next_leaf = leafAt(next);
            unlockLeaf(leaf);
            leaf = next_leaf;
            lockLeaf(leaf);
        }
        region_.chargeRead(pmem::kCacheLine);

        const uint64_t bm = leaf->bitmap.load(std::memory_order_acquire);
        for (uint64_t probe = bm; probe != 0; probe &= probe - 1) {
            const int i = std::countr_zero(probe);
            if (leaf->slots[i].key == key) {
                leaf->bitmap.fetch_and(~(1ull << i),
                                       std::memory_order_acq_rel);
                region_.persist(&leaf->bitmap, sizeof(leaf->bitmap));
                size_.fetch_sub(1, std::memory_order_relaxed);
                unlockLeaf(leaf);
                return true;
            }
        }
        unlockLeaf(leaf);
        return false;
    }
}

size_t
PacTree::scan(uint64_t start, size_t count,
              std::vector<std::pair<uint64_t, uint64_t>> &out) const
{
    size_t appended = 0;
    POff off = dirFind(start);
    std::vector<std::pair<uint64_t, uint64_t>> batch;
    while (off != kNullOff && appended < count) {
        const Leaf *leaf = leafAt(off);
        region_.chargeRead(pmem::kCacheLine);
        POff next;
        while (true) {
            batch.clear();
            const uint64_t v1 =
                leaf->version.load(std::memory_order_acquire);
            if (v1 & 1) {
                cpuRelax();
                continue;
            }
            next = leaf->next.load(std::memory_order_acquire);
            const uint64_t bm = leaf->bitmap.load(std::memory_order_acquire);
            for (uint64_t probe = bm; probe != 0; probe &= probe - 1) {
                const int i = std::countr_zero(probe);
                if (leaf->slots[i].key >= start) {
                    batch.emplace_back(
                        leaf->slots[i].key,
                        leaf->slots[i].handle.load(
                            std::memory_order_acquire));
                }
            }
            if (leaf->version.load(std::memory_order_acquire) == v1)
                break;
        }
        std::sort(batch.begin(), batch.end());
        for (const auto &kv : batch) {
            if (appended >= count)
                break;
            out.push_back(kv);
            appended++;
        }
        off = next;
    }
    return appended;
}

void
PacTree::forEach(const std::function<void(uint64_t, uint64_t)> &fn) const
{
    std::vector<std::pair<uint64_t, uint64_t>> batch;
    for (POff off = head_leaf_; off != kNullOff;) {
        const Leaf *leaf = leafAt(off);
        batch.clear();
        const uint64_t bm = leaf->bitmap.load(std::memory_order_acquire);
        for (uint64_t probe = bm; probe != 0; probe &= probe - 1) {
            const int i = std::countr_zero(probe);
            batch.emplace_back(leaf->slots[i].key,
                               leaf->slots[i].handle.load(
                                   std::memory_order_acquire));
        }
        std::sort(batch.begin(), batch.end());
        for (const auto &kv : batch)
            fn(kv.first, kv.second);
        off = leaf->next.load(std::memory_order_acquire);
    }
}

void
PacTree::forEachParallel(
    int threads, const std::function<void(uint64_t, uint64_t)> &fn) const
{
    // Collect the (immutable-under-quiescence) leaf chain, then carve it
    // into per-thread stripes.
    std::vector<POff> leaves;
    for (POff off = head_leaf_; off != kNullOff;
         off = leafAt(off)->next.load(std::memory_order_acquire)) {
        leaves.push_back(off);
    }
    threads = std::max(1, threads);
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; t++) {
        pool.emplace_back([&, t] {
            for (size_t i = static_cast<size_t>(t); i < leaves.size();
                 i += static_cast<size_t>(threads)) {
                const Leaf *leaf = leafAt(leaves[i]);
                const uint64_t bm =
                    leaf->bitmap.load(std::memory_order_acquire);
                for (uint64_t probe = bm; probe != 0;
                     probe &= probe - 1) {
                    const int s = std::countr_zero(probe);
                    fn(leaf->slots[s].key,
                       leaf->slots[s].handle.load(
                           std::memory_order_acquire));
                }
            }
        });
    }
    for (auto &th : pool)
        th.join();
}

void
PacTree::splitLeaf(Leaf *leaf, POff leaf_off)
{
    // Caller holds the leaf lock. Gather and sort the live entries.
    struct Entry {
        uint64_t key;
        uint64_t handle;
        int slot;
    };
    Entry entries[kLeafSlots];
    int n = 0;
    const uint64_t bm = leaf->bitmap.load(std::memory_order_acquire);
    for (uint64_t probe = bm; probe != 0; probe &= probe - 1) {
        const int i = std::countr_zero(probe);
        entries[n++] = {leaf->slots[i].key,
                        leaf->slots[i].handle.load(
                            std::memory_order_acquire),
                        i};
    }
    PRISM_CHECK(n >= 2);
    std::sort(entries, entries + n,
              [](const Entry &a, const Entry &b) { return a.key < b.key; });

    const int mid = n / 2;
    const uint64_t split_key = entries[mid].key;

    // 1) Build the new right sibling completely, then persist it.
    const POff new_off = allocLeaf(split_key);
    PRISM_CHECK(new_off != kNullOff && "NVM exhausted during split");
    Leaf *right = leafAt(new_off);
    uint64_t right_bm = 0;
    uint64_t moved_mask = 0;
    for (int i = mid; i < n; i++) {
        const int dst = i - mid;
        right->slots[dst].key = entries[i].key;
        right->slots[dst].handle.store(entries[i].handle,
                                       std::memory_order_relaxed);
        right_bm |= 1ull << dst;
        moved_mask |= 1ull << entries[i].slot;
    }
    right->bitmap.store(right_bm, std::memory_order_release);
    right->next.store(leaf->next.load(std::memory_order_acquire),
                      std::memory_order_release);
    region_.persist(right, sizeof(*right));

    // 2) Link the sibling into the chain (single pointer, crash-atomic).
    leaf->next.store(new_off, std::memory_order_release);
    region_.persist(&leaf->next, sizeof(leaf->next));

    // 3) Retire the moved entries from the left leaf. If we crash between
    //    (2) and (3), recovery prunes left-leaf entries >= the sibling's
    //    low key (rebuildFromChain), so duplicates cannot survive.
    leaf->bitmap.fetch_and(~moved_mask, std::memory_order_acq_rel);
    region_.persist(&leaf->bitmap, sizeof(leaf->bitmap));

    leaf_count_.fetch_add(1, std::memory_order_relaxed);
    dirInsert(split_key, new_off);
}

void
PacTree::rebuildFromChain()
{
    size_t total = 0;
    uint64_t leaves = 0;
    for (POff off = head_leaf_; off != kNullOff;) {
        Leaf *leaf = leafAt(off);
        leaf->version.store(0, std::memory_order_relaxed);
        const POff next = leaf->next.load(std::memory_order_relaxed);
        if (next != kNullOff) {
            // Prune remnants of an interrupted split: entries that now
            // belong to the right sibling.
            const uint64_t bound = leafAt(next)->low_key;
            uint64_t stale = 0;
            uint64_t bm = leaf->bitmap.load(std::memory_order_relaxed);
            for (uint64_t probe = bm; probe != 0; probe &= probe - 1) {
                const int i = std::countr_zero(probe);
                if (leaf->slots[i].key >= bound)
                    stale |= 1ull << i;
            }
            if (stale != 0) {
                leaf->bitmap.fetch_and(~stale, std::memory_order_relaxed);
                region_.persist(&leaf->bitmap, sizeof(leaf->bitmap));
            }
        }
        total += static_cast<size_t>(std::popcount(
            leaf->bitmap.load(std::memory_order_relaxed)));
        dirInsert(leaf->low_key, off);
        leaves++;
        off = next;
    }
    size_.store(total, std::memory_order_relaxed);
    leaf_count_.store(leaves, std::memory_order_relaxed);
}

}  // namespace prism::index
