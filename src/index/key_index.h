/**
 * @file
 * Abstract ordered key index used by Prism.
 *
 * The paper stresses that Prism "has no dependency on PACTree" — any
 * scalable range index works (§4.1, §6). This interface is that seam:
 * PrismDb is written against KeyIndex, with PacTree as the default
 * implementation and DramIndex available for tests and baselines.
 *
 * Keys are 64-bit integers; the mapped value is an opaque 64-bit handle
 * (in Prism, the index of an HSIT entry).
 */
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

namespace prism::index {

/** Result of insertOrGet. */
struct InsertResult {
    uint64_t handle;   ///< the handle now associated with the key
    bool inserted;     ///< true when this call created the mapping
};

/** Ordered map from 64-bit keys to 64-bit handles. All methods thread-safe. */
class KeyIndex {
  public:
    virtual ~KeyIndex() = default;

    /**
     * Insert @p key -> @p handle if absent.
     * If the key already exists, the existing mapping is returned
     * untouched — the caller (Prism) then routes the update through the
     * existing HSIT entry instead.
     */
    virtual InsertResult insertOrGet(uint64_t key, uint64_t handle) = 0;

    /** Point lookup. */
    virtual std::optional<uint64_t> lookup(uint64_t key) const = 0;

    /** Remove the key. @return true when the key was present. */
    virtual bool remove(uint64_t key) = 0;

    /**
     * Collect up to @p count (key, handle) pairs with key >= @p start in
     * ascending key order.
     * @return number of pairs appended to @p out.
     */
    virtual size_t scan(uint64_t start, size_t count,
                        std::vector<std::pair<uint64_t, uint64_t>> &out)
        const = 0;

    /** Visit every (key, handle) pair; used by recovery. Not linearizable
     *  against concurrent writers — call quiesced. */
    virtual void forEach(
        const std::function<void(uint64_t, uint64_t)> &fn) const = 0;

    /** Number of live keys. */
    virtual size_t size() const = 0;
};

}  // namespace prism::index
