/**
 * @file
 * PacTree — the Persistent Key Index (§4.1, §6 of the paper).
 *
 * A persistent concurrent range index in the PACTree/FPTree family:
 *
 *  - The *data layer* is a chain of fixed-size leaves on NVM. Leaves hold
 *    packed (key, handle) slots guarded by a validity bitmap, so inserts
 *    and deletes are single-bit crash-atomic flips ordered after slot
 *    persistence — no logging.
 *  - The *search layer* is volatile: a sharded ordered directory mapping
 *    each leaf's low key to the leaf. It is rebuilt from the leaf chain
 *    at recovery, which also prunes the remnants of interrupted splits.
 *  - Concurrency follows optimistic lock coupling: readers are lock-free
 *    (version-validated), writers lock only the affected leaf.
 *
 * This matches the paper's requirements for the component: NVM-resident,
 * multicore-scalable, self-crash-consistent, supports scans, and is
 * replaceable behind KeyIndex.
 */
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>

#include "index/key_index.h"
#include "pmem/pmem_allocator.h"
#include "pmem/pmem_region.h"

namespace prism::index {

/** Persistent, concurrent B+-tree-style range index on NVM. */
class PacTree : public KeyIndex {
  public:
    /** Slots per leaf. */
    static constexpr int kLeafSlots = 64;

    /**
     * Create a fresh tree.
     * @param region NVM region the tree lives in.
     * @param alloc  allocator for leaf nodes.
     * @return the new tree; rootOff() identifies it for later recovery.
     */
    static std::unique_ptr<PacTree> create(pmem::PmemRegion &region,
                                           pmem::PmemAllocator &alloc);

    /**
     * Re-attach to an existing tree after a restart/crash; rebuilds the
     * volatile search layer and prunes interrupted splits.
     * @param root_off value previously returned by rootOff().
     */
    static std::unique_ptr<PacTree> recover(pmem::PmemRegion &region,
                                            pmem::PmemAllocator &alloc,
                                            pmem::POff root_off);

    /** Persistent identity of this tree (store in your master root). */
    pmem::POff rootOff() const { return root_off_; }

    // KeyIndex interface.
    InsertResult insertOrGet(uint64_t key, uint64_t handle) override;
    std::optional<uint64_t> lookup(uint64_t key) const override;
    bool remove(uint64_t key) override;
    size_t scan(uint64_t start, size_t count,
                std::vector<std::pair<uint64_t, uint64_t>> &out)
        const override;
    void forEach(const std::function<void(uint64_t, uint64_t)> &fn)
        const override;

    /**
     * Visit every (key, handle) pair using @p threads worker threads,
     * partitioned by leaves. @p fn must be thread-safe; iteration order
     * is undefined. Used by Prism's parallel recovery (§5.5).
     */
    void forEachParallel(
        int threads,
        const std::function<void(uint64_t, uint64_t)> &fn) const;
    size_t size() const override {
        return size_.load(std::memory_order_relaxed);
    }

    /** NVM bytes consumed by leaves (for the §7.6 space experiment). */
    uint64_t nvmBytes() const {
        return leaf_count_.load(std::memory_order_relaxed) * sizeof(Leaf);
    }

    /** @name Directory-sharding introspection (tests/benchmarks) */
    ///@{
    /** Current adaptive shard shift (see shardOf()). */
    int shardShift() const {
        return shard_shift_.load(std::memory_order_acquire);
    }

    /** Number of directory shards currently holding at least one leaf. */
    int populatedShards() const;
    ///@}

  private:
    /** On-NVM leaf node. */
    struct Leaf {
        /** OLC version/lock word: LSB = locked, rest = version counter.
         *  Semantically volatile; recovery ignores it. */
        std::atomic<uint64_t> version;
        /** Bit i set => slots[i] holds a live entry. Crash-atomic. */
        std::atomic<uint64_t> bitmap;
        /** Next leaf in key order (persistent chain). */
        std::atomic<uint64_t> next;
        /** Smallest key this leaf may contain. */
        uint64_t low_key;

        struct Slot {
            /** Atomic because optimistic readers (lookup/scan seqlock
             *  pattern) read slots concurrently with an in-progress
             *  insert; the version check discards torn candidates, but
             *  the load itself must be a non-racing atomic. */
            std::atomic<uint64_t> key;
            std::atomic<uint64_t> handle;
        };
        Slot slots[kLeafSlots];
    };

    /** On-NVM tree root record. */
    struct TreeRoot {
        uint64_t magic;
        pmem::POff head_leaf;
    };

    static constexpr uint64_t kTreeMagic = 0x50414354524545ull;  // "PACTREE"
    static constexpr int kDirShards = 256;

    PacTree(pmem::PmemRegion &region, pmem::PmemAllocator &alloc,
            pmem::POff root_off);

    Leaf *leafAt(pmem::POff off) const {
        return region_.as<Leaf>(off);
    }

    /** Allocate and zero-init a leaf. */
    pmem::POff allocLeaf(uint64_t low_key);

    /** Volatile search layer: low_key -> leaf offset, sharded to avoid a
     *  single contended lock. */
    struct alignas(64) DirShard {
        mutable std::shared_mutex mu;
        std::map<uint64_t, pmem::POff> leaves;
    };

    static constexpr int kDirShardBits = 8;  // kDirShards == 1 << this

    /**
     * Saturating shard map: min(key >> shift, kDirShards - 1). Monotone
     * non-decreasing in the key for any fixed shift — dirFind's
     * fall-back scan through lower shards depends on that — and the
     * shift adapts to the keys actually inserted (see maybeGrowShift),
     * so dense small-key workloads (YCSB row ids) spread over all
     * shards instead of collapsing into shard 0 the way a fixed
     * top-byte split would.
     */
    static int shardOf(uint64_t key, int shift) {
        const uint64_t s = key >> shift;
        return static_cast<int>(
            std::min<uint64_t>(s, kDirShards - 1));
    }

    /**
     * Grow the shard shift so @p key maps below the saturation point.
     * Grow-only; re-homes every directory entry under all shard locks.
     * Readers that loaded the old (smaller) shift still find every
     * entry: growing the shift only moves entries to lower shard
     * indices, which their fall-back scan visits anyway.
     */
    void maybeGrowShift(uint64_t key);

    void dirInsert(uint64_t low_key, pmem::POff leaf);
    void dirErase(uint64_t low_key);

    /** Find the leaf whose range covers @p key (may be stale; callers
     *  validate bounds and chase the chain). */
    pmem::POff dirFind(uint64_t key) const;

    /** Lock a leaf's OLC word. @return pre-lock version. */
    uint64_t lockLeaf(Leaf *leaf);
    void unlockLeaf(Leaf *leaf);

    /** Split @p leaf (caller holds its lock; lock is retained). */
    void splitLeaf(Leaf *leaf, pmem::POff leaf_off);

    /** Rebuild the directory from the persistent leaf chain. */
    void rebuildFromChain();

    pmem::PmemRegion &region_;
    pmem::PmemAllocator &alloc_;
    pmem::POff root_off_;
    pmem::POff head_leaf_;

    std::unique_ptr<DirShard[]> shards_;
    /** Adaptive, grow-only shard shift (see shardOf()). */
    std::atomic<int> shard_shift_{0};
    std::atomic<size_t> size_{0};
    std::atomic<uint64_t> leaf_count_{0};
};

}  // namespace prism::index
