/**
 * @file
 * prism::net — the RESP network front-end (docs/SERVER.md; ROADMAP
 * item 2, "Prism as a network service").
 *
 * RespServer promotes a store to a network service: one event-loop
 * thread multiplexes every client connection over poll(), decodes the
 * RESP subset (GET/SET/DEL/MGET/SCAN/PING/ECHO/AUTH/INFO), and issues
 * each data command through the store's *asynchronous* API
 * (KvStore::asyncGet and friends, core/async.h). That coupling is the
 * point of the design: the loop never blocks on an SSD read — an
 * asyncGet that misses DRAM/NVM parks in the device queue while the
 * loop keeps serving other connections — so a single thread sustains
 * hundreds of in-flight operations across thousands of sockets, which
 * is the paper's queue-depth argument (§5.3) extended to the wire.
 *
 * Per-connection pipelining and ordering: clients may send any number
 * of commands without waiting. Each command gets a slot in the
 * connection's pipeline FIFO; async completions (which arrive in any
 * order, on Value-Storage completion threads) mark their slot done and
 * wake the loop via the self-pipe, and the loop flushes the longest
 * *done prefix* of the FIFO — so responses always come back in request
 * order, as RESP requires.
 *
 * Backpressure: a connection stops being read (its POLLIN is dropped)
 * while it has `inflight_cap` commands in its pipeline or more than
 * `out_hwm_bytes` of unsent replies. The kernel socket buffer then
 * fills, and the client's sends stall — the standard TCP backpressure
 * chain. This bounds per-connection memory no matter how aggressively
 * a client pipelines.
 *
 * Multi-tenancy: a tenant is a 16-bit namespace in the top bits of the
 * 64-bit store key (wire keys are decimal integers < 2^48). Clients
 * pick a tenant with `AUTH <name>` (connection-scoped) or per-key with
 * the `<name>:<key>` prefix convention; unauthenticated connections
 * use the default namespace. Because the namespace occupies the key's
 * high bits, each tenant's keys are one contiguous range — SCAN stays
 * exact per tenant with no filtering cost beyond a range check. Each
 * tenant gets a `prism.tenant.<name>.*` stats family and an optional
 * token-bucket ops/s quota (exceeding it earns `-THROTTLED` errors,
 * never event-loop delay).
 *
 * The server publishes `prism.server.*` stats and registers a listener
 * section with obs::setListenerInfo so /healthz and `prism_cli top`
 * report listener state wherever the store embeds a front-end.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/resp.h"
#include "ycsb/kv_interface.h"

namespace prism::net {

/** Tenant namespaces live in the key's top 16 bits. */
constexpr int kTenantBits = 16;
constexpr int kKeyBits = 64 - kTenantBits;
constexpr uint64_t kKeyMask = (1ull << kKeyBits) - 1;

/** Store key for wire key @p key48 in tenant @p tenant. */
inline uint64_t
tenantKey(uint16_t tenant, uint64_t key48)
{
    return (static_cast<uint64_t>(tenant) << kKeyBits) |
           (key48 & kKeyMask);
}

/** The RESP listener fronting one store. */
class RespServer {
  public:
    struct Options {
        /** TCP port; 0 binds an ephemeral port (see port()). */
        int port = 0;
        /** Bind address; loopback by default (a deployment that wants
         *  external traffic opts in explicitly). */
        std::string bind_addr = "127.0.0.1";
        /** Connections beyond this are accepted and immediately closed
         *  with an error reply. */
        int max_connections = 4096;
        /** Per-connection in-flight command cap (backpressure). */
        int inflight_cap = 128;
        /** Per-connection unsent-reply high-water mark (backpressure). */
        size_t out_hwm_bytes = 4u << 20;
        /** Frame limits handed to every connection's RespParser. */
        RespLimits limits;
        /**
         * Default per-tenant quota in ops/s; 0 = unlimited. Burst is
         * max(rate, 1000) so short pipelined bursts are not penalised.
         */
        uint64_t quota_default_ops = 0;
        /** Per-tenant overrides: "name=rate[,name=rate...]". */
        std::string quota_spec;
    };

    /** Counters behind INFO, /healthz and `prism_cli top`. */
    struct ListenerInfo {
        int port = 0;
        int connections = 0;
        uint64_t accepted = 0;
        uint64_t commands = 0;
        uint64_t throttled = 0;
        uint64_t inflight = 0;
    };

    /**
     * @p store outlives the server. Commands dispatch through the
     * KvStore async surface, so any store works; the Prism fixture
     * (ShardRouter underneath) is the intended one.
     */
    explicit RespServer(ycsb::KvStore &store);
    ~RespServer();

    RespServer(const RespServer &) = delete;
    RespServer &operator=(const RespServer &) = delete;

    /** Bind + listen + spawn the loop. False (and @p err) on failure. */
    bool start(const Options &opts, std::string *err);

    /**
     * Stop the loop, close every socket, and drain in-flight store
     * operations (their completion callbacks reference the server).
     * Idempotent.
     */
    void stop();

    bool running() const;

    /** Bound TCP port while running (resolves port 0), else 0. */
    int port() const;

    ListenerInfo info() const;

  private:
    struct Impl;
    Impl *impl_;
};

}  // namespace prism::net
