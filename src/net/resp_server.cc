#include "net/resp_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/log.h"
#include "common/logging.h"
#include "common/obs_server.h"
#include "common/stats.h"
#include "common/token_bucket.h"
#include "common/trace.h"

namespace prism::net {

namespace {

/** Strict decimal uint64 (wire keys, cursors, counts). */
bool
parseU64(std::string_view s, uint64_t *out)
{
    if (s.empty() || s.size() > 20)
        return false;
    uint64_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            return false;
        const uint64_t d = static_cast<uint64_t>(c - '0');
        if (v > (UINT64_MAX - d) / 10)
            return false;
        v = v * 10 + d;
    }
    *out = v;
    return true;
}

std::string
upperAscii(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(
            std::toupper(static_cast<unsigned char>(c)));
    return out;
}

/** Metric-name-safe tenant slug: [a-zA-Z0-9_-], capped at 32 chars. */
std::string
sanitizeTenant(std::string_view name)
{
    std::string out;
    out.reserve(std::min<size_t>(name.size(), 32));
    for (char c : name) {
        if (out.size() >= 32)
            break;
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '-';
        out += ok ? c : '_';
    }
    return out.empty() ? std::string("_") : out;
}

/** Everything one tenant namespace owns. Server-thread-only. */
struct TenantState {
    uint16_t id = 0;
    std::string name;
    stats::Counter *ops = nullptr;
    stats::Counter *reads = nullptr;
    stats::Counter *writes = nullptr;
    stats::Counter *scans = nullptr;
    stats::Counter *errors = nullptr;
    stats::Counter *throttled = nullptr;
    std::unique_ptr<TokenBucket> quota;  ///< null = unlimited
};

/** One queued command awaiting its reply slot in request order. */
struct Pending {
    enum class Kind { kInline, kPut, kGet, kDel, kMget, kScan };
    Kind kind = Kind::kInline;
    std::string reply;               ///< pre-rendered for kInline
    core::OpFuture future;           ///< put / get / scan
    std::vector<core::OpFuture> futures;  ///< del / mget fan-out
    TenantState *tenant = nullptr;
    size_t scan_count = 0;           ///< requested COUNT (kScan)

    bool
    ready() const
    {
        switch (kind) {
          case Kind::kInline:
            return true;
          case Kind::kPut:
          case Kind::kGet:
          case Kind::kScan:
            return future.valid() && future.ready();
          case Kind::kDel:
          case Kind::kMget:
            for (const auto &f : futures)
                if (!f.valid() || !f.ready())
                    return false;
            return true;
        }
        return true;
    }
};

struct Conn {
    int fd = -1;
    RespParser parser;
    std::deque<std::unique_ptr<Pending>> pipeline;
    std::string out;
    size_t sent = 0;
    TenantState *tenant = nullptr;  ///< AUTH-selected namespace
    bool close_after_flush = false; ///< QUIT / protocol error / EOF
    bool dead = false;

    explicit Conn(int f, RespLimits limits) : fd(f), parser(limits) {}
};

}  // namespace

struct RespServer::Impl {
    ycsb::KvStore &store;
    Options opts;

    std::mutex mu;  ///< guards start/stop
    int listen_fd = -1;
    int wake_fd[2] = {-1, -1};
    std::atomic<int> bound_port{0};
    std::atomic<bool> stopping{false};
    std::thread thread;
    uint64_t start_ns = 0;

    /**
     * Store operations issued but not yet completed. Completion
     * callbacks hold a raw Impl*, so stop() drains this to zero before
     * the wake pipe (and the Impl) can go away.
     */
    std::atomic<uint64_t> store_inflight{0};

    /** Tenant namespaces; server-thread-only after start(). */
    std::map<std::string, std::unique_ptr<TenantState>> tenants;
    std::map<std::string, uint64_t> quota_overrides;
    uint16_t next_tenant_id = 1;

    stats::Counter *c_accepted = nullptr;
    stats::Counter *c_rejected = nullptr;
    stats::Counter *c_commands = nullptr;
    stats::Counter *c_throttled = nullptr;
    stats::Counter *c_parse_errors = nullptr;
    stats::Counter *c_bytes_in = nullptr;
    stats::Counter *c_bytes_out = nullptr;
    stats::Counter *c_backpressure = nullptr;
    stats::Gauge *g_connections = nullptr;
    stats::Gauge *g_port = nullptr;
    stats::Gauge *g_inflight = nullptr;
    stats::Gauge *g_tenants = nullptr;

    explicit Impl(ycsb::KvStore &s) : store(s) {}

    void loop();
    void wakeLoop();
    core::AsyncCallback completionCb();

    TenantState *tenantByName(std::string_view name);
    bool resolveKey(Conn &c, std::string_view arg, uint64_t *store_key,
                    TenantState **tenant, std::string *err);

    void dispatch(Conn &c, std::vector<std::string> &args);
    void flush(Conn &c);
    void render(Conn &c, Pending &p);
    std::string renderInfo();
    std::string listenerJson();
};

void
RespServer::Impl::wakeLoop()
{
    const char b = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd[1], &b, 1);
}

core::AsyncCallback
RespServer::Impl::completionCb()
{
    // Runs on whichever thread completes the op (often a Value-Storage
    // completion thread). It must not touch any Conn/Pending fields —
    // readiness is read from the future's own shared state — so its
    // whole job is waking the loop. The inflight decrement comes AFTER
    // the wake write: stop() keeps the pipe open until inflight hits
    // zero, which makes the write always safe.
    return [this](const Status &) {
        wakeLoop();
        g_inflight->sub(1);
        store_inflight.fetch_sub(1, std::memory_order_release);
    };
}

TenantState *
RespServer::Impl::tenantByName(std::string_view raw)
{
    const std::string name = sanitizeTenant(raw);
    auto it = tenants.find(name);
    if (it != tenants.end())
        return it->second.get();
    // Bound the namespace table: tenant ids are 16-bit, and every
    // tenant mints a stats family, so a key-spraying client must not
    // be able to grow either without limit.
    if (tenants.size() >= 4096 || next_tenant_id == 0)
        return nullptr;
    auto t = std::make_unique<TenantState>();
    t->id = (name == "default") ? 0 : next_tenant_id++;
    t->name = name;
    auto &reg = stats::StatsRegistry::global();
    const std::string p = "prism.tenant." + name + ".";
    t->ops = &reg.counter(p + "ops", "requests");
    t->reads = &reg.counter(p + "reads", "requests");
    t->writes = &reg.counter(p + "writes", "requests");
    t->scans = &reg.counter(p + "scans", "requests");
    t->errors = &reg.counter(p + "errors", "requests");
    t->throttled = &reg.counter(p + "throttled", "requests");
    uint64_t rate = opts.quota_default_ops;
    if (auto q = quota_overrides.find(name); q != quota_overrides.end())
        rate = q->second;
    if (rate > 0)
        t->quota = std::make_unique<TokenBucket>(
            static_cast<double>(rate),
            std::max<uint64_t>(rate, 1000));
    TenantState *out = t.get();
    tenants.emplace(name, std::move(t));
    g_tenants->set(static_cast<int64_t>(tenants.size()));
    return out;
}

bool
RespServer::Impl::resolveKey(Conn &c, std::string_view arg,
                             uint64_t *store_key, TenantState **tenant,
                             std::string *err)
{
    TenantState *t = c.tenant;
    std::string_view keypart = arg;
    // Prefix convention: "<tenant>:<key>" routes one key into another
    // namespace without AUTH (and wins over the connection's AUTH).
    if (const size_t colon = arg.find(':');
        colon != std::string_view::npos) {
        t = tenantByName(arg.substr(0, colon));
        if (t == nullptr) {
            *err = "ERR tenant table full";
            return false;
        }
        keypart = arg.substr(colon + 1);
    }
    if (t == nullptr)
        t = tenantByName("default");
    uint64_t key48;
    if (!parseU64(keypart, &key48) || key48 > kKeyMask) {
        *err = "ERR key must be a decimal integer below 2^48";
        return false;
    }
    *store_key = tenantKey(t->id, key48);
    *tenant = t;
    return true;
}

void
RespServer::Impl::render(Conn &c, Pending &p)
{
    switch (p.kind) {
      case Pending::Kind::kInline:
        c.out += p.reply;
        return;
      case Pending::Kind::kPut: {
        const Status &st = p.future.status();
        if (st.isOk()) {
            appendSimple(&c.out, "OK");
        } else {
            appendError(&c.out, "ERR " + st.toString());
            if (p.tenant)
                p.tenant->errors->inc();
        }
        return;
      }
      case Pending::Kind::kGet: {
        const Status &st = p.future.status();
        if (st.isOk())
            appendBulk(&c.out, p.future.value());
        else if (st.isNotFound())
            appendNull(&c.out);
        else {
            appendError(&c.out, "ERR " + st.toString());
            if (p.tenant)
                p.tenant->errors->inc();
        }
        return;
      }
      case Pending::Kind::kDel: {
        int64_t removed = 0;
        for (const auto &f : p.futures) {
            if (f.status().isOk())
                removed++;
            else if (!f.status().isNotFound() && p.tenant)
                p.tenant->errors->inc();
        }
        appendInteger(&c.out, removed);
        return;
      }
      case Pending::Kind::kMget: {
        appendArrayHeader(&c.out, p.futures.size());
        for (auto &f : p.futures) {
            if (f.status().isOk())
                appendBulk(&c.out, f.value());
            else
                appendNull(&c.out);
        }
        return;
      }
      case Pending::Kind::kScan: {
        const Status &st = p.future.status();
        if (!st.isOk() && !st.isNotFound()) {
            appendError(&c.out, "ERR " + st.toString());
            if (p.tenant)
                p.tenant->errors->inc();
            return;
        }
        const auto &rows = p.future.rows();
        const uint16_t tid = p.tenant ? p.tenant->id : 0;
        // The namespace is the key's high bits, so this tenant's rows
        // are exactly the prefix that still carries its id.
        size_t in_range = 0;
        while (in_range < rows.size() &&
               (rows[in_range].first >> kKeyBits) == tid)
            in_range++;
        uint64_t next_cursor = 0;
        if (in_range == rows.size() && rows.size() >= p.scan_count &&
            !rows.empty()) {
            const uint64_t last48 = rows.back().first & kKeyMask;
            next_cursor = (last48 == kKeyMask) ? 0 : last48 + 1;
        }
        appendArrayHeader(&c.out, 2);
        appendBulk(&c.out, std::to_string(next_cursor));
        appendArrayHeader(&c.out, in_range);
        for (size_t i = 0; i < in_range; i++)
            appendBulk(&c.out,
                       std::to_string(rows[i].first & kKeyMask));
        return;
      }
    }
}

std::string
RespServer::Impl::renderInfo()
{
    char line[192];
    std::string s;
    s += "# Server\r\n";
    std::snprintf(line, sizeof(line), "prism_version:net-1\r\n"
                  "tcp_port:%d\r\n",
                  bound_port.load(std::memory_order_acquire));
    s += line;
    std::snprintf(line, sizeof(line), "uptime_in_seconds:%llu\r\n",
                  static_cast<unsigned long long>(
                      (nowNs() - start_ns) / 1000000000ull));
    s += line;
    s += "# Clients\r\n";
    std::snprintf(line, sizeof(line),
                  "connected_clients:%lld\r\n"
                  "inflight_commands:%lld\r\n",
                  static_cast<long long>(g_connections->value()),
                  static_cast<long long>(g_inflight->value()));
    s += line;
    s += "# Stats\r\n";
    std::snprintf(line, sizeof(line),
                  "total_connections_received:%llu\r\n"
                  "total_commands_processed:%llu\r\n",
                  static_cast<unsigned long long>(c_accepted->value()),
                  static_cast<unsigned long long>(c_commands->value()));
    s += line;
    std::snprintf(line, sizeof(line),
                  "total_net_input_bytes:%llu\r\n"
                  "total_net_output_bytes:%llu\r\n",
                  static_cast<unsigned long long>(c_bytes_in->value()),
                  static_cast<unsigned long long>(c_bytes_out->value()));
    s += line;
    std::snprintf(line, sizeof(line),
                  "throttled_commands:%llu\r\n"
                  "parse_errors:%llu\r\n",
                  static_cast<unsigned long long>(c_throttled->value()),
                  static_cast<unsigned long long>(
                      c_parse_errors->value()));
    s += line;
    s += "# Tenants\r\n";
    for (const auto &[name, t] : tenants) {
        std::snprintf(line, sizeof(line),
                      "tenant_%s:ops=%llu,errors=%llu,throttled=%llu,"
                      "quota_ops=%.0f\r\n",
                      name.c_str(),
                      static_cast<unsigned long long>(t->ops->value()),
                      static_cast<unsigned long long>(t->errors->value()),
                      static_cast<unsigned long long>(
                          t->throttled->value()),
                      t->quota ? t->quota->rate() : 0.0);
        s += line;
    }
    return s;
}

std::string
RespServer::Impl::listenerJson()
{
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "{\"proto\":\"resp\",\"port\":%d,\"connections\":%lld,"
        "\"accepted\":%llu,\"commands\":%llu,\"inflight\":%lld,"
        "\"throttled\":%llu,\"tenants\":%lld}",
        bound_port.load(std::memory_order_acquire),
        static_cast<long long>(g_connections->value()),
        static_cast<unsigned long long>(c_accepted->value()),
        static_cast<unsigned long long>(c_commands->value()),
        static_cast<long long>(g_inflight->value()),
        static_cast<unsigned long long>(c_throttled->value()),
        static_cast<long long>(g_tenants->value()));
    return buf;
}

void
RespServer::Impl::dispatch(Conn &c, std::vector<std::string> &args)
{
    c_commands->inc();
    auto p = std::make_unique<Pending>();
    auto inlineReply = [&](auto append, auto &&...v) {
        append(&p->reply, std::forward<decltype(v)>(v)...);
    };
    const std::string cmd = upperAscii(args[0]);
    const size_t n = args.size();

    auto wrongArity = [&] {
        appendError(&p->reply,
                    "ERR wrong number of arguments for '" + cmd + "'");
    };
    auto admitted = [&](TenantState *t, bool write_op, bool scan_op) {
        t->ops->inc();
        (scan_op ? t->scans : write_op ? t->writes : t->reads)->inc();
        if (t->quota && !t->quota->tryAcquire(1)) {
            c_throttled->inc();
            t->throttled->inc();
            appendError(&p->reply,
                        "THROTTLED tenant '" + t->name +
                            "' over its ops/s quota");
            return false;
        }
        return true;
    };
    auto track = [&] {
        // One pipeline slot per sub-operation would break reply
        // arity, so fan-out commands count each future individually.
        const uint64_t subs =
            p->kind == Pending::Kind::kDel ||
                    p->kind == Pending::Kind::kMget
                ? p->futures.size()
                : 1;
        store_inflight.fetch_add(subs, std::memory_order_relaxed);
        g_inflight->add(static_cast<int64_t>(subs));
    };

    if (cmd == "PING") {
        if (n <= 1)
            inlineReply(appendSimple, "PONG");
        else
            inlineReply(appendBulk, args[1]);
    } else if (cmd == "ECHO") {
        if (n != 2)
            wrongArity();
        else
            inlineReply(appendBulk, args[1]);
    } else if (cmd == "AUTH") {
        // AUTH <tenant> (RESP2) or AUTH <tenant> <password> (ACL-style
        // clients); the password is accepted and ignored.
        if (n != 2 && n != 3) {
            wrongArity();
        } else if (TenantState *t = tenantByName(args[1])) {
            c.tenant = t;
            inlineReply(appendSimple, "OK");
        } else {
            inlineReply(appendError, "ERR tenant table full");
        }
    } else if (cmd == "SELECT") {
        // Single-database store; accept and ignore for client compat.
        inlineReply(appendSimple, "OK");
    } else if (cmd == "COMMAND") {
        inlineReply(appendArrayHeader, size_t{0});
    } else if (cmd == "INFO") {
        inlineReply(appendBulk, renderInfo());
    } else if (cmd == "QUIT") {
        inlineReply(appendSimple, "OK");
        c.close_after_flush = true;
    } else if (cmd == "SET") {
        uint64_t key;
        std::string err;
        if (n != 3)
            wrongArity();
        else if (!resolveKey(c, args[1], &key, &p->tenant, &err))
            inlineReply(appendError, err);
        else if (admitted(p->tenant, true, false)) {
            p->kind = Pending::Kind::kPut;
            track();
            p->future = store.asyncPut(key, args[2], completionCb());
        }
    } else if (cmd == "GET") {
        uint64_t key;
        std::string err;
        if (n != 2)
            wrongArity();
        else if (!resolveKey(c, args[1], &key, &p->tenant, &err))
            inlineReply(appendError, err);
        else if (admitted(p->tenant, false, false)) {
            p->kind = Pending::Kind::kGet;
            track();
            p->future = store.asyncGet(key, completionCb());
        }
    } else if (cmd == "DEL" || cmd == "MGET") {
        std::vector<uint64_t> keys;
        std::string err;
        if (n < 2) {
            wrongArity();
        } else {
            for (size_t i = 1; i < n && err.empty(); i++) {
                uint64_t key;
                TenantState *t;
                if (!resolveKey(c, args[i], &key, &t, &err))
                    break;
                if (p->tenant == nullptr)
                    p->tenant = t;  // accounting: first key's tenant
                keys.push_back(key);
            }
            if (!err.empty()) {
                p->tenant = nullptr;
                inlineReply(appendError, err);
            } else if (admitted(p->tenant, cmd == "DEL", false)) {
                p->kind = cmd == "DEL" ? Pending::Kind::kDel
                                       : Pending::Kind::kMget;
                p->futures.resize(keys.size());
                track();
                for (size_t i = 0; i < keys.size(); i++)
                    p->futures[i] =
                        cmd == "DEL"
                            ? store.asyncDel(keys[i], completionCb())
                            : store.asyncGet(keys[i], completionCb());
            }
        }
    } else if (cmd == "SCAN") {
        uint64_t cursor = 0, count = 10;
        std::string err;
        bool ok = n >= 2;
        TenantState *t = c.tenant != nullptr ? c.tenant
                                             : tenantByName("default");
        if (ok) {
            std::string_view cur = args[1];
            if (const size_t colon = cur.find(':');
                colon != std::string_view::npos) {
                t = tenantByName(cur.substr(0, colon));
                cur = cur.substr(colon + 1);
            }
            ok = t != nullptr && parseU64(cur, &cursor) &&
                 cursor <= kKeyMask;
        }
        for (size_t i = 2; ok && i < n; i += 2) {
            if (upperAscii(args[i]) == "COUNT" && i + 1 < n)
                ok = parseU64(args[i + 1], &count) && count > 0;
            else
                ok = false;
        }
        if (n < 2 || !ok || t == nullptr) {
            inlineReply(appendError,
                        "ERR syntax: SCAN <cursor> [COUNT <n>]");
        } else if (admitted(t, false, true)) {
            p->kind = Pending::Kind::kScan;
            p->tenant = t;
            p->scan_count = std::min<uint64_t>(count, 1000);
            track();
            p->future = store.asyncScan(tenantKey(t->id, cursor),
                                        p->scan_count, completionCb());
        }
    } else {
        inlineReply(appendError, "ERR unknown command '" + cmd + "'");
    }
    c.pipeline.push_back(std::move(p));
}

void
RespServer::Impl::flush(Conn &c)
{
    while (!c.pipeline.empty() && c.pipeline.front()->ready()) {
        render(c, *c.pipeline.front());
        c.pipeline.pop_front();
    }
}

void
RespServer::Impl::loop()
{
    trace::TraceRegistry::global().setThreadName("prism-resp");
    std::vector<std::unique_ptr<Conn>> conns;
    std::vector<std::string> args;
    while (!stopping.load(std::memory_order_acquire)) {
        std::vector<pollfd> pfds;
        pfds.push_back({wake_fd[0], POLLIN, 0});
        pfds.push_back({listen_fd, POLLIN, 0});
        for (const auto &c : conns) {
            short ev = 0;
            const bool backpressured =
                c->pipeline.size() >=
                    static_cast<size_t>(opts.inflight_cap) ||
                c->out.size() - c->sent > opts.out_hwm_bytes;
            if (!c->close_after_flush && !backpressured)
                ev |= POLLIN;
            if (c->sent < c->out.size())
                ev |= POLLOUT;
            pfds.push_back({c->fd, ev, 0});
        }
        const size_t polled = conns.size();
        if (::poll(pfds.data(), pfds.size(), -1) < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (pfds[0].revents & POLLIN) {
            char drain[256];
            while (::read(wake_fd[0], drain, sizeof(drain)) > 0) {}
        }
        if (pfds[1].revents & POLLIN) {
            for (;;) {
                const int fd = ::accept4(listen_fd, nullptr, nullptr,
                                         SOCK_NONBLOCK | SOCK_CLOEXEC);
                if (fd < 0)
                    break;
                if (conns.size() >=
                    static_cast<size_t>(opts.max_connections)) {
                    c_rejected->inc();
                    const char msg[] = "-ERR max connections reached\r\n";
                    [[maybe_unused]] ssize_t n =
                        ::send(fd, msg, sizeof(msg) - 1, MSG_NOSIGNAL);
                    ::close(fd);
                    continue;
                }
                const int one = 1;
                ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                             sizeof(one));
                c_accepted->inc();
                conns.push_back(
                    std::make_unique<Conn>(fd, opts.limits));
                g_connections->set(
                    static_cast<int64_t>(conns.size()));
            }
        }
        for (size_t i = 0; i < conns.size(); i++) {
            Conn &c = *conns[i];
            const short rev = i < polled ? pfds[i + 2].revents : 0;
            if (rev & (POLLERR | POLLNVAL))
                c.dead = true;
            bool eof = false;
            if (!c.dead && (rev & (POLLIN | POLLHUP))) {
                char buf[16384];
                for (;;) {
                    const ssize_t r = ::recv(c.fd, buf, sizeof(buf), 0);
                    if (r > 0) {
                        c_bytes_in->add(static_cast<uint64_t>(r));
                        c.parser.feed(
                            std::string_view(buf,
                                             static_cast<size_t>(r)));
                        continue;
                    }
                    if (r == 0)
                        eof = true;
                    else if (errno != EAGAIN && errno != EWOULDBLOCK &&
                             errno != EINTR)
                        c.dead = true;
                    break;
                }
            }
            // Dispatch / flush until neither makes progress: a flush
            // can free pipeline slots that let buffered pipelined
            // commands dispatch, which can complete inline and allow
            // another flush.
            bool progress = !c.dead;
            while (progress) {
                progress = false;
                while (!c.close_after_flush &&
                       c.pipeline.size() <
                           static_cast<size_t>(opts.inflight_cap)) {
                    const ParseResult r = c.parser.next(&args);
                    if (r == ParseResult::kCommand) {
                        dispatch(c, args);
                        progress = true;
                        continue;
                    }
                    if (r == ParseResult::kError) {
                        // Framing is lost; answer what we can, then
                        // the error, then hang up.
                        c_parse_errors->inc();
                        auto p = std::make_unique<Pending>();
                        appendError(&p->reply, c.parser.error());
                        c.pipeline.push_back(std::move(p));
                        c.close_after_flush = true;
                        progress = true;
                    }
                    break;
                }
                const size_t before = c.pipeline.size();
                flush(c);
                progress = progress || c.pipeline.size() != before;
            }
            if (!c.dead && c.sent < c.out.size()) {
                while (c.sent < c.out.size()) {
                    const ssize_t r =
                        ::send(c.fd, c.out.data() + c.sent,
                               c.out.size() - c.sent, MSG_NOSIGNAL);
                    if (r > 0) {
                        c_bytes_out->add(static_cast<uint64_t>(r));
                        c.sent += static_cast<size_t>(r);
                        continue;
                    }
                    if (errno != EAGAIN && errno != EWOULDBLOCK &&
                        errno != EINTR)
                        c.dead = true;
                    break;
                }
                if (c.sent >= c.out.size()) {
                    c.out.clear();
                    c.sent = 0;
                }
            }
            // EOF: the client will send nothing more. Finish writing
            // whatever is still owed (pipelined requests already
            // received), then close.
            if (eof)
                c.close_after_flush = true;
            if (c.close_after_flush && c.pipeline.empty() &&
                c.sent >= c.out.size())
                c.dead = true;
            // A connection dying with commands in flight must wait for
            // them: Pending futures are only safe to destroy on this
            // thread once their completions have run, and the flush
            // above drains them in order.
            if (c.dead && !c.pipeline.empty())
                c.dead = false, c.close_after_flush = true;
        }
        const size_t live_before = conns.size();
        conns.erase(std::remove_if(conns.begin(), conns.end(),
                                   [](const auto &c) {
                                       if (!c->dead)
                                           return false;
                                       ::close(c->fd);
                                       return true;
                                   }),
                    conns.end());
        if (conns.size() != live_before)
            g_connections->set(static_cast<int64_t>(conns.size()));
    }
    // Stop: connections are dropped without waiting for their replies,
    // but in-flight store ops are awaited (stop() handles the drain).
    for (auto &c : conns) {
        while (!c->pipeline.empty()) {
            if (!c->pipeline.front()->ready()) {
                std::this_thread::yield();
                continue;
            }
            c->pipeline.pop_front();
        }
        ::close(c->fd);
    }
    g_connections->set(0);
}

RespServer::RespServer(ycsb::KvStore &store)
    : impl_(new Impl(store))
{
}

RespServer::~RespServer()
{
    stop();
    delete impl_;
}

bool
RespServer::start(const Options &opts, std::string *err)
{
    PRISM_CHECK(!running());
    impl_->opts = opts;
    impl_->stopping.store(false, std::memory_order_release);
    impl_->start_ns = nowNs();

    auto &reg = stats::StatsRegistry::global();
    impl_->c_accepted = &reg.counter("prism.server.accepted", "conns");
    impl_->c_rejected = &reg.counter("prism.server.rejected", "conns");
    impl_->c_commands =
        &reg.counter("prism.server.commands", "requests");
    impl_->c_throttled =
        &reg.counter("prism.server.throttled", "requests");
    impl_->c_parse_errors =
        &reg.counter("prism.server.parse_errors", "requests");
    impl_->c_bytes_in = &reg.counter("prism.server.bytes_in", "bytes");
    impl_->c_bytes_out = &reg.counter("prism.server.bytes_out", "bytes");
    impl_->c_backpressure =
        &reg.counter("prism.server.backpressure", "events");
    impl_->g_connections = &reg.gauge("prism.server.connections");
    impl_->g_port = &reg.gauge("prism.server.port");
    impl_->g_inflight = &reg.gauge("prism.server.inflight");
    impl_->g_tenants = &reg.gauge("prism.server.tenants");

    // Parse "name=rate,name=rate" quota overrides, and pre-register
    // the named tenants so INFO shows them before their first request.
    impl_->quota_overrides.clear();
    {
        std::string_view spec = opts.quota_spec;
        while (!spec.empty()) {
            size_t comma = spec.find(',');
            std::string_view item = spec.substr(0, comma);
            spec = comma == std::string_view::npos
                       ? std::string_view{}
                       : spec.substr(comma + 1);
            const size_t eq = item.find('=');
            uint64_t rate;
            if (eq == std::string_view::npos || eq == 0 ||
                !parseU64(item.substr(eq + 1), &rate)) {
                if (err)
                    *err = "bad quota spec item: " + std::string(item);
                return false;
            }
            impl_->quota_overrides.emplace(
                sanitizeTenant(item.substr(0, eq)), rate);
        }
    }
    impl_->tenantByName("default");
    for (const auto &[name, rate] : impl_->quota_overrides)
        impl_->tenantByName(name);

    const int fd = ::socket(AF_INET,
                            SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                            0);
    if (fd < 0) {
        if (err)
            *err = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(opts.port));
    if (::inet_pton(AF_INET, opts.bind_addr.c_str(),
                    &addr.sin_addr) != 1) {
        if (err)
            *err = "bad bind address: " + opts.bind_addr;
        ::close(fd);
        return false;
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) <
            0 ||
        ::listen(fd, 512) < 0) {
        if (err)
            *err = std::string("bind/listen: ") + std::strerror(errno);
        ::close(fd);
        return false;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len);
    if (::pipe2(impl_->wake_fd, O_NONBLOCK | O_CLOEXEC) != 0) {
        if (err)
            *err = std::string("pipe2: ") + std::strerror(errno);
        ::close(fd);
        return false;
    }
    impl_->listen_fd = fd;
    impl_->bound_port.store(ntohs(addr.sin_port),
                            std::memory_order_release);
    impl_->g_port->set(port());
    obs::setListenerInfo([impl = impl_] { return impl->listenerJson(); });
    impl_->thread = std::thread([this] { impl_->loop(); });
    PRISM_LOG_INFO("net.server",
                   "RESP listening on %s:%d (inflight cap %d, "
                   "max conns %d)",
                   opts.bind_addr.c_str(), port(), opts.inflight_cap,
                   opts.max_connections);
    return true;
}

void
RespServer::stop()
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (!impl_->thread.joinable())
        return;
    obs::setListenerInfo(nullptr);
    impl_->stopping.store(true, std::memory_order_release);
    impl_->wakeLoop();
    impl_->thread.join();
    // The loop has drained every connection's pipeline, but a
    // completion callback may still be between its wake write and its
    // inflight decrement; the wake pipe stays open until all are out.
    while (impl_->store_inflight.load(std::memory_order_acquire) != 0)
        std::this_thread::yield();
    ::close(impl_->listen_fd);
    ::close(impl_->wake_fd[0]);
    ::close(impl_->wake_fd[1]);
    impl_->listen_fd = impl_->wake_fd[0] = impl_->wake_fd[1] = -1;
    impl_->bound_port.store(0, std::memory_order_release);
    impl_->g_port->set(0);
    impl_->g_inflight->set(0);
}

bool
RespServer::running() const
{
    return impl_->bound_port.load(std::memory_order_acquire) != 0;
}

int
RespServer::port() const
{
    return impl_->bound_port.load(std::memory_order_acquire);
}

RespServer::ListenerInfo
RespServer::info() const
{
    ListenerInfo li;
    li.port = port();
    if (impl_->g_connections == nullptr)
        return li;  // never started; counters unregistered
    li.connections =
        static_cast<int>(impl_->g_connections->value());
    li.accepted = impl_->c_accepted->value();
    li.commands = impl_->c_commands->value();
    li.throttled = impl_->c_throttled->value();
    li.inflight =
        static_cast<uint64_t>(impl_->g_inflight->value());
    return li;
}

}  // namespace prism::net
