/**
 * @file
 * RESP (REdis Serialization Protocol) framing for the Prism network
 * front-end (docs/SERVER.md).
 *
 * Two independent halves:
 *
 *  - RespParser: the *server-side* command decoder. Feed it raw socket
 *    bytes in arbitrary fragments; it yields complete commands (one
 *    vector of argument strings each) as they become available. It
 *    accepts the two client framings real Redis clients use — RESP
 *    arrays of bulk strings (`*2\r\n$3\r\nGET\r\n$2\r\n42\r\n`, what
 *    redis-cli and every driver send) and inline commands
 *    (`PING\r\n`, what a human with netcat sends) — and enforces
 *    frame-size / argument-count / bulk-length limits so one abusive
 *    connection cannot balloon server memory. Framing errors are
 *    terminal for the connection: once byte boundaries are lost there
 *    is no safe way to resynchronise, so the server replies with the
 *    parse error and closes.
 *
 *  - RespReply + parseReply(): the *client-side* reply decoder used by
 *    prism_loadgen and the tests. Parses one complete reply (simple
 *    string, error, integer, bulk, nil, or a recursively nested array)
 *    from a byte buffer and reports how many bytes it consumed.
 *
 * Plus the tiny reply encoders both sides share. Everything here is
 * pure byte-shuffling — no sockets, no store — so the framing layer is
 * unit-testable byte-at-a-time (tests/resp_parser_test.cc).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace prism::net {

/** Outcome of one RespParser::next() call. */
enum class ParseResult {
    kCommand,   ///< *out holds one complete command
    kNeedMore,  ///< buffer holds no complete command yet
    kError,     ///< protocol violation; see error(), close the conn
};

/** Limits the parser enforces per command frame. */
struct RespLimits {
    /** Total encoded bytes one command may occupy (oversized-command
     *  rejection; also bounds parser memory per connection). */
    size_t max_frame_bytes = 1 << 20;
    /** Maximum arguments per command (`*N`). */
    size_t max_args = 1024 + 1;
    /** Maximum bytes in one bulk argument (`$N`). */
    size_t max_bulk_bytes = 512 * 1024;
};

/**
 * Incremental RESP command parser. One instance per connection; not
 * thread-safe (a connection is owned by one event loop).
 */
class RespParser {
  public:
    explicit RespParser(RespLimits limits = {}) : limits_(limits) {}

    /** Append raw bytes received from the socket. */
    void feed(std::string_view data);

    /**
     * Extract the next complete command into @p out (cleared first).
     * kCommand may be returned repeatedly for pipelined input; call
     * until kNeedMore. After kError the parser is poisoned: every later
     * call returns kError and the connection must be closed.
     */
    ParseResult next(std::vector<std::string> *out);

    /** Human-readable protocol violation after kError. */
    const std::string &error() const { return error_; }

    /** Bytes buffered but not yet consumed (backpressure signal). */
    size_t buffered() const { return buf_.size() - pos_; }

  private:
    ParseResult fail(std::string msg);
    ParseResult parseInline(std::vector<std::string> *out);
    ParseResult parseArray(std::vector<std::string> *out);
    /** Parse a CRLF line starting at @p from; false = incomplete. */
    bool line(size_t from, std::string_view *out, size_t *end) const;
    void discard(size_t upto);

    RespLimits limits_;
    std::string buf_;
    size_t pos_ = 0;  ///< consumed prefix of buf_
    std::string error_;
    bool poisoned_ = false;
};

/** @name Reply encoders (server side; loadgen encodes commands with
 *  encodeCommand below). Append to @p out, never reallocate-per-byte. */
///@{
void appendSimple(std::string *out, std::string_view s);  ///< +s\r\n
void appendError(std::string *out, std::string_view msg); ///< -msg\r\n
void appendInteger(std::string *out, int64_t v);          ///< :v\r\n
void appendBulk(std::string *out, std::string_view s);    ///< $n\r\ns\r\n
void appendNull(std::string *out);                        ///< $-1\r\n
void appendArrayHeader(std::string *out, size_t n);       ///< *n\r\n
///@}

/** Encode @p args as a RESP array of bulk strings (the client framing). */
void encodeCommand(std::string *out,
                   const std::vector<std::string_view> &args);

/** Parsed reply tree (client side). */
struct RespReply {
    enum class Type { kSimple, kError, kInteger, kBulk, kNull, kArray };
    Type type = Type::kNull;
    std::string str;      ///< simple / error / bulk payload
    int64_t integer = 0;  ///< kInteger value
    std::vector<RespReply> elements;  ///< kArray children

    bool isError() const { return type == Type::kError; }
};

/**
 * Parse one complete reply from @p data. Returns the number of bytes
 * consumed, 0 when @p data does not yet hold a complete reply, or
 * SIZE_MAX on malformed input. Arrays nest (SCAN replies); nesting
 * depth is capped at 8 — nothing in the served subset goes deeper.
 */
size_t parseReply(std::string_view data, RespReply *out);

}  // namespace prism::net
