#include "net/resp.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace prism::net {

namespace {

/**
 * Strict decimal parse for RESP length/count headers. Rejects empty
 * strings, signs other than a single leading '-', and overflow; RESP
 * headers are machine-generated, so anything unusual is an attack or a
 * desynchronised stream, not a formatting preference.
 */
bool
parseI64(std::string_view s, int64_t *out)
{
    if (s.empty() || s.size() > 20)
        return false;
    bool neg = false;
    size_t i = 0;
    if (s[0] == '-') {
        neg = true;
        i = 1;
        if (s.size() == 1)
            return false;
    }
    uint64_t v = 0;
    for (; i < s.size(); i++) {
        if (s[i] < '0' || s[i] > '9')
            return false;
        const uint64_t d = static_cast<uint64_t>(s[i] - '0');
        if (v > (UINT64_MAX - d) / 10)
            return false;
        v = v * 10 + d;
    }
    if (v > static_cast<uint64_t>(INT64_MAX))
        return false;
    *out = neg ? -static_cast<int64_t>(v) : static_cast<int64_t>(v);
    return true;
}

}  // namespace

// ---------------------------------------------------------------------
// RespParser
// ---------------------------------------------------------------------

void
RespParser::feed(std::string_view data)
{
    buf_.append(data.data(), data.size());
}

bool
RespParser::line(size_t from, std::string_view *out, size_t *end) const
{
    const size_t lf = buf_.find("\r\n", from);
    if (lf == std::string::npos)
        return false;
    *out = std::string_view(buf_).substr(from, lf - from);
    *end = lf + 2;
    return true;
}

void
RespParser::discard(size_t upto)
{
    pos_ = upto;
    // Compact once the consumed prefix dominates, so a long-lived
    // connection does not grow its buffer without bound.
    if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
        buf_.erase(0, pos_);
        pos_ = 0;
    }
}

ParseResult
RespParser::fail(std::string msg)
{
    poisoned_ = true;
    error_ = std::move(msg);
    return ParseResult::kError;
}

ParseResult
RespParser::next(std::vector<std::string> *out)
{
    if (poisoned_)
        return ParseResult::kError;
    out->clear();
    if (pos_ >= buf_.size()) {
        discard(pos_);
        return ParseResult::kNeedMore;
    }
    // Oversized-command rejection applies to *incomplete* frames too:
    // a frame that is already past the limit without terminating can
    // never become acceptable, and waiting for it to finish is exactly
    // the memory-exhaustion vector the limit exists to close.
    const ParseResult r = buf_[pos_] == '*' ? parseArray(out)
                                            : parseInline(out);
    if (r == ParseResult::kNeedMore && buffered() > limits_.max_frame_bytes)
        return fail("ERR command frame exceeds " +
                    std::to_string(limits_.max_frame_bytes) + " bytes");
    return r;
}

ParseResult
RespParser::parseInline(std::vector<std::string> *out)
{
    std::string_view l;
    size_t end;
    if (!line(pos_, &l, &end))
        return ParseResult::kNeedMore;
    if (l.size() > limits_.max_frame_bytes)
        return fail("ERR command frame exceeds " +
                    std::to_string(limits_.max_frame_bytes) + " bytes");
    // An inline command starting with another RESP type byte means the
    // peer is speaking a framing we do not serve (e.g. a stray reply).
    if (!l.empty() && (l[0] == '$' || l[0] == '+' || l[0] == '-' ||
                       l[0] == ':'))
        return fail("ERR unexpected RESP type byte '" +
                    std::string(1, l[0]) + "'");
    size_t i = 0;
    while (i < l.size()) {
        while (i < l.size() && (l[i] == ' ' || l[i] == '\t'))
            i++;
        size_t start = i;
        while (i < l.size() && l[i] != ' ' && l[i] != '\t')
            i++;
        if (i > start)
            out->emplace_back(l.substr(start, i - start));
        if (out->size() > limits_.max_args)
            return fail("ERR too many arguments");
    }
    discard(end);
    // Blank line: not a command, try the next frame (real Redis does
    // the same — it lets netcat users mash Enter harmlessly).
    if (out->empty())
        return next(out);
    return ParseResult::kCommand;
}

ParseResult
RespParser::parseArray(std::vector<std::string> *out)
{
    size_t cur = pos_;
    std::string_view l;
    size_t end;
    if (!line(cur, &l, &end))
        return ParseResult::kNeedMore;
    int64_t nargs;
    if (!parseI64(l.substr(1), &nargs))
        return fail("ERR invalid multibulk length");
    if (nargs < 0)
        return fail("ERR invalid multibulk length");
    if (static_cast<size_t>(nargs) > limits_.max_args)
        return fail("ERR too many arguments (max " +
                    std::to_string(limits_.max_args) + ")");
    cur = end;
    out->reserve(static_cast<size_t>(nargs));
    for (int64_t i = 0; i < nargs; i++) {
        if (!line(cur, &l, &end))
            return ParseResult::kNeedMore;
        if (l.empty() || l[0] != '$')
            return fail("ERR expected bulk string ('$'), got '" +
                        std::string(l.substr(0, 1)) + "'");
        int64_t blen;
        if (!parseI64(l.substr(1), &blen) || blen < 0)
            return fail("ERR invalid bulk length");
        if (static_cast<size_t>(blen) > limits_.max_bulk_bytes)
            return fail("ERR bulk argument exceeds " +
                        std::to_string(limits_.max_bulk_bytes) +
                        " bytes");
        cur = end;
        if (buf_.size() - cur < static_cast<size_t>(blen) + 2)
            return ParseResult::kNeedMore;
        if (buf_[cur + blen] != '\r' || buf_[cur + blen + 1] != '\n')
            return fail("ERR bulk string missing CRLF terminator");
        out->emplace_back(buf_, cur, static_cast<size_t>(blen));
        cur += static_cast<size_t>(blen) + 2;
    }
    // A zero-argument array (`*0`) frames no command; skip it like a
    // blank inline line.
    discard(cur);
    if (out->empty())
        return next(out);
    return ParseResult::kCommand;
}

// ---------------------------------------------------------------------
// Encoders
// ---------------------------------------------------------------------

void
appendSimple(std::string *out, std::string_view s)
{
    out->push_back('+');
    out->append(s);
    out->append("\r\n");
}

void
appendError(std::string *out, std::string_view msg)
{
    out->push_back('-');
    out->append(msg);
    out->append("\r\n");
}

void
appendInteger(std::string *out, int64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), ":%" PRId64 "\r\n", v);
    out->append(buf);
}

void
appendBulk(std::string *out, std::string_view s)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "$%zu\r\n", s.size());
    out->append(buf);
    out->append(s);
    out->append("\r\n");
}

void
appendNull(std::string *out)
{
    out->append("$-1\r\n");
}

void
appendArrayHeader(std::string *out, size_t n)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "*%zu\r\n", n);
    out->append(buf);
}

void
encodeCommand(std::string *out, const std::vector<std::string_view> &args)
{
    appendArrayHeader(out, args.size());
    for (const auto &a : args)
        appendBulk(out, a);
}

// ---------------------------------------------------------------------
// Client-side reply parser
// ---------------------------------------------------------------------

namespace {

size_t
parseReplyDepth(std::string_view data, RespReply *out, int depth)
{
    if (depth > 8)
        return SIZE_MAX;
    const size_t lf = data.find("\r\n");
    if (lf == std::string_view::npos)
        return data.size() > (1 << 20) ? SIZE_MAX : 0;
    if (data.empty())
        return 0;
    const std::string_view body = data.substr(1, lf - 1);
    const size_t after = lf + 2;
    switch (data[0]) {
      case '+':
        out->type = RespReply::Type::kSimple;
        out->str = std::string(body);
        return after;
      case '-':
        out->type = RespReply::Type::kError;
        out->str = std::string(body);
        return after;
      case ':': {
        out->type = RespReply::Type::kInteger;
        if (!parseI64(body, &out->integer))
            return SIZE_MAX;
        return after;
      }
      case '$': {
        int64_t n;
        if (!parseI64(body, &n) || n < -1)
            return SIZE_MAX;
        if (n == -1) {
            out->type = RespReply::Type::kNull;
            return after;
        }
        if (data.size() - after < static_cast<size_t>(n) + 2)
            return 0;
        if (data[after + n] != '\r' || data[after + n + 1] != '\n')
            return SIZE_MAX;
        out->type = RespReply::Type::kBulk;
        out->str = std::string(data.substr(after,
                                           static_cast<size_t>(n)));
        return after + static_cast<size_t>(n) + 2;
      }
      case '*': {
        int64_t n;
        if (!parseI64(body, &n) || n < -1)
            return SIZE_MAX;
        if (n == -1) {
            out->type = RespReply::Type::kNull;
            return after;
        }
        out->type = RespReply::Type::kArray;
        out->elements.clear();
        size_t cur = after;
        for (int64_t i = 0; i < n; i++) {
            RespReply child;
            const size_t used = parseReplyDepth(data.substr(cur),
                                                &child, depth + 1);
            if (used == 0 || used == SIZE_MAX)
                return used;
            out->elements.push_back(std::move(child));
            cur += used;
        }
        return cur;
      }
    }
    return SIZE_MAX;
}

}  // namespace

size_t
parseReply(std::string_view data, RespReply *out)
{
    *out = RespReply{};
    if (data.empty())
        return 0;
    return parseReplyDepth(data, out, 0);
}

}  // namespace prism::net
