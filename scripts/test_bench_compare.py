#!/usr/bin/env python3
"""Unit tests for bench_compare.py (stdlib only; run via ctest or
``python3 scripts/test_bench_compare.py``)."""

import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stderr, redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_compare  # noqa: E402


def row(figure="fig16", store="Prism", mix="YCSB-A", threads=8, **metrics):
    r = {"figure": figure, "store": store, "mix": mix, "threads": threads}
    r.update(metrics)
    return r


class BenchCompareTest(unittest.TestCase):
    def run_compare(self, base_rows, cur_rows, *opts):
        """Write both row sets as JSON-lines files and run main()."""
        with tempfile.TemporaryDirectory() as d:
            base = os.path.join(d, "base.jsonl")
            cur = os.path.join(d, "cur.jsonl")
            for path, rows in ((base, base_rows), (cur, cur_rows)):
                with open(path, "w", encoding="utf-8") as f:
                    for r in rows:
                        f.write(json.dumps(r) + "\n")
            out, err = io.StringIO(), io.StringIO()
            with redirect_stdout(out), redirect_stderr(err):
                code = bench_compare.main(
                    ["bench_compare.py", base, cur, *opts])
            return code, out.getvalue(), err.getvalue()

    def test_identical_rows_pass(self):
        rows = [row(kops=100.0), row(mix="YCSB-C", kops=200.0)]
        code, out, _ = self.run_compare(rows, rows)
        self.assertEqual(code, 0)
        self.assertIn("0 regression(s)", out)

    def test_throughput_drop_beyond_tolerance_fails(self):
        code, out, _ = self.run_compare(
            [row(kops=100.0)], [row(kops=80.0)])  # -20% > 15% tol
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", out)

    def test_throughput_drop_within_tolerance_passes(self):
        code, out, _ = self.run_compare(
            [row(kops=100.0)], [row(kops=90.0)])  # -10% < 15% tol
        self.assertEqual(code, 0)
        self.assertNotIn("REGRESSION", out)

    def test_throughput_gain_is_not_a_regression(self):
        code, out, _ = self.run_compare(
            [row(kops=100.0)], [row(kops=150.0)])
        self.assertEqual(code, 0)
        self.assertIn("improved", out)

    def test_latency_rise_beyond_tolerance_fails(self):
        code, out, _ = self.run_compare(
            [row(figure="tab03", p99_us=1000.0)],
            [row(figure="tab03", p99_us=1500.0)])  # +50% > 30% tol
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", out)

    def test_latency_drop_is_not_a_regression(self):
        code, _, _ = self.run_compare(
            [row(figure="tab03", p99_us=1000.0)],
            [row(figure="tab03", p99_us=500.0)])
        self.assertEqual(code, 0)

    def test_waf_rise_fails(self):
        code, out, _ = self.run_compare(
            [row(figure="fig12", waf=1.5)],
            [row(figure="fig12", waf=1.8)])  # +20% > 10% tol
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", out)

    def test_warn_only_reports_but_passes(self):
        code, out, _ = self.run_compare(
            [row(kops=100.0)], [row(kops=50.0)], "--warn-only")
        self.assertEqual(code, 0)
        self.assertIn("REGRESSION", out)
        self.assertIn("--warn-only", out)

    def test_tolerance_override(self):
        code, _, _ = self.run_compare(
            [row(kops=100.0)], [row(kops=80.0)], "--tol=kops:0.5")
        self.assertEqual(code, 0)

    def test_rows_matched_by_identity_not_order(self):
        base = [row(mix="YCSB-C", kops=200.0), row(mix="YCSB-A", kops=100.0)]
        cur = [row(mix="YCSB-A", kops=100.0), row(mix="YCSB-C", kops=200.0)]
        code, out, _ = self.run_compare(base, cur)
        self.assertEqual(code, 0)
        self.assertIn("2 metrics compared across 2 rows", out)

    def test_timeline_rows_are_skipped(self):
        base = [row(kops=100.0),
                {"figure": "fig17", "t_s": 0.25, "kops": 98.0}]
        cur = [row(kops=100.0),
               {"figure": "fig17", "t_s": 0.25, "kops": 10.0}]
        code, out, _ = self.run_compare(base, cur)
        self.assertEqual(code, 0)
        self.assertIn("1 metrics compared", out)

    def test_document_and_jsonl_inputs_mix(self):
        with tempfile.TemporaryDirectory() as d:
            doc = os.path.join(d, "BENCH_prX.json")
            lines = os.path.join(d, "rows.jsonl")
            with open(doc, "w", encoding="utf-8") as f:
                json.dump({"fig16": [row(kops=100.0)]}, f)
            with open(lines, "w", encoding="utf-8") as f:
                f.write(json.dumps(row(kops=60.0)) + "\n")
            out = io.StringIO()
            with redirect_stdout(out), redirect_stderr(io.StringIO()):
                code = bench_compare.main(["bench_compare.py", doc, lines])
            self.assertEqual(code, 1)
            self.assertIn("REGRESSION", out.getvalue())

    def test_no_common_rows_is_an_error(self):
        code, _, err = self.run_compare(
            [row(store="Prism", kops=1.0)],
            [row(store="KVell", kops=1.0)])
        self.assertEqual(code, 2)
        self.assertIn("no comparable rows", err)

    def test_zero_baseline_to_nonzero_regresses_lower_better(self):
        code, _, _ = self.run_compare(
            [row(figure="fig12", waf=0.0)],
            [row(figure="fig12", waf=2.0)])
        self.assertEqual(code, 1)


class AbModeTest(unittest.TestCase):
    """Paired sign-test gate (--ab)."""

    run_compare = BenchCompareTest.run_compare

    def test_sign_test_p_values(self):
        self.assertAlmostEqual(bench_compare.sign_test_p(0, 0), 1.0)
        # 10/10 worse: p = 1/1024
        self.assertAlmostEqual(
            bench_compare.sign_test_p(10, 0), 1.0 / 1024.0)
        # 5/10 worse: p > 0.5 (includes the observed count)
        self.assertGreater(bench_compare.sign_test_p(5, 5), 0.5)

    def test_consistent_large_drop_fails(self):
        reps_a = [row(kops=100.0 + i) for i in range(10)]
        reps_b = [row(kops=90.0 + i) for i in range(10)]  # -10% always
        code, out, _ = self.run_compare(reps_a, reps_b, "--ab")
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", out)

    def test_consistent_tiny_drop_passes_effect_floor(self):
        # Statistically significant (10/10 worse) but below the 2%
        # practical floor: machine drift, not a regression.
        reps_a = [row(kops=100.0) for _ in range(10)]
        reps_b = [row(kops=99.5) for _ in range(10)]
        code, out, _ = self.run_compare(reps_a, reps_b, "--ab")
        self.assertEqual(code, 0)
        self.assertNotIn("REGRESSION", out)

    def test_noisy_even_split_passes(self):
        # Large but direction-alternating deltas: not significant.
        reps_a = [row(kops=100.0) for _ in range(10)]
        reps_b = [row(kops=80.0 if i % 2 else 120.0) for i in range(10)]
        code, out, _ = self.run_compare(reps_a, reps_b, "--ab")
        self.assertEqual(code, 0)
        self.assertNotIn("REGRESSION", out)

    def test_min_effect_override(self):
        reps_a = [row(kops=100.0) for _ in range(10)]
        reps_b = [row(kops=99.5) for _ in range(10)]
        code, out, _ = self.run_compare(
            reps_a, reps_b, "--ab", "--ab-min-effect=0.001")
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", out)

    def test_alpha_override(self):
        # 4/4 worse has p = 1/16 = 0.0625: fails at alpha 0.1,
        # passes at the default 0.05.
        reps_a = [row(kops=100.0) for _ in range(4)]
        reps_b = [row(kops=90.0) for _ in range(4)]
        code, _, _ = self.run_compare(reps_a, reps_b, "--ab")
        self.assertEqual(code, 0)
        code, _, _ = self.run_compare(
            reps_a, reps_b, "--ab", "--ab-alpha=0.1")
        self.assertEqual(code, 1)

    def test_pairs_matched_per_config_not_pooled_across(self):
        # Two configs whose absolute rates differ 10x; pairing must
        # stay within each config. A consistent drop in both fails.
        reps_a = ([row(mix="YCSB-A", kops=100.0)] * 5 +
                  [row(mix="YCSB-C", kops=1000.0)] * 5)
        reps_b = ([row(mix="YCSB-A", kops=90.0)] * 5 +
                  [row(mix="YCSB-C", kops=900.0)] * 5)
        code, out, _ = self.run_compare(reps_a, reps_b, "--ab")
        self.assertEqual(code, 1)
        self.assertIn("10", out)  # all 10 pairs used

    def test_unpaired_reps_dropped(self):
        reps_a = [row(kops=100.0)] * 6
        reps_b = [row(kops=100.0)] * 4
        code, out, _ = self.run_compare(reps_a, reps_b, "--ab")
        self.assertEqual(code, 0)
        self.assertIn("2 unpaired", out)

    def test_warn_only_reports_but_passes(self):
        reps_a = [row(kops=100.0)] * 10
        reps_b = [row(kops=80.0)] * 10
        code, out, _ = self.run_compare(
            reps_a, reps_b, "--ab", "--warn-only")
        self.assertEqual(code, 0)
        self.assertIn("REGRESSION", out)

    def test_improvement_is_not_a_regression(self):
        reps_a = [row(kops=100.0)] * 10
        reps_b = [row(kops=150.0)] * 10
        code, out, _ = self.run_compare(reps_a, reps_b, "--ab")
        self.assertEqual(code, 0)
        self.assertIn("improved", out)

    def test_no_common_rows_is_an_error(self):
        code, _, err = self.run_compare(
            [row(store="Prism", kops=1.0)],
            [row(store="KVell", kops=1.0)], "--ab")
        self.assertEqual(code, 2)
        self.assertIn("no comparable rows", err)


if __name__ == "__main__":
    unittest.main()
