#!/usr/bin/env python3
"""Raw-socket RESP conformance checks against a running prism_server.

Usage: resp_conformance.py PORT [HOST]

Plain-stdlib (socket only) on purpose: this is the second, independent
implementation of the wire protocol — it talks to the server the way a
foreign Redis client would, so a framing bug that prism_loadgen and the
C++ tests share (they all link src/net/resp.cc) cannot hide here.
Checks cover the served command subset, reply framing, pipelining
order, fragmented writes, binary-safe payloads, tenant namespaces, and
oversized-frame rejection. Exits non-zero on the first failure.
"""
import socket
import sys
import time


class Resp:
    """Minimal blocking RESP client over one TCP connection."""

    def __init__(self, host, port):
        self.sock = socket.create_connection((host, port), timeout=10)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.buf = b""

    def send_raw(self, data):
        self.sock.sendall(data)

    def send(self, *args):
        out = b"*%d\r\n" % len(args)
        for a in args:
            if isinstance(a, str):
                a = a.encode()
            out += b"$%d\r\n%s\r\n" % (len(a), a)
        self.sock.sendall(out)

    def _line(self):
        while b"\r\n" not in self.buf:
            data = self.sock.recv(65536)
            if not data:
                raise ConnectionError("server closed connection")
            self.buf += data
        line, self.buf = self.buf.split(b"\r\n", 1)
        return line

    def _bulk(self, n):
        while len(self.buf) < n + 2:
            data = self.sock.recv(65536)
            if not data:
                raise ConnectionError("server closed connection")
            self.buf += data
        body, self.buf = self.buf[:n], self.buf[n + 2:]
        return body

    def reply(self):
        line = self._line()
        kind, body = line[:1], line[1:]
        if kind == b"+":
            return body.decode()
        if kind == b"-":
            return Exception(body.decode())
        if kind == b":":
            return int(body)
        if kind == b"$":
            n = int(body)
            return None if n == -1 else self._bulk(n)
        if kind == b"*":
            n = int(body)
            return None if n == -1 else [self.reply() for _ in range(n)]
        raise ValueError("unknown reply type %r" % line)

    def round(self, *args):
        self.send(*args)
        return self.reply()

    def expect_closed(self):
        self.sock.settimeout(10)
        try:
            while True:
                if not self.sock.recv(65536):
                    return True
        except (ConnectionError, socket.timeout):
            return True


PASSED = 0


def check(name, cond):
    global PASSED
    if not cond:
        print("FAIL: %s" % name)
        sys.exit(1)
    PASSED += 1
    print("ok: %s" % name)


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    port = int(sys.argv[1])
    host = sys.argv[2] if len(sys.argv) > 2 else "127.0.0.1"

    c = Resp(host, port)
    check("PING -> PONG", c.round("PING") == "PONG")
    check("PING msg echoes", c.round("PING", "hi") == b"hi")
    check("ECHO", c.round("ECHO", "payload") == b"payload")
    check("SET returns OK", c.round("SET", "1001", "value-1") == "OK")
    check("GET returns value", c.round("GET", "1001") == b"value-1")
    check("GET missing is nil", c.round("GET", "999999") is None)
    check("DEL counts removed", c.round("DEL", "1001", "999999") == 1)
    check("GET after DEL is nil", c.round("GET", "1001") is None)

    c.round("SET", "2001", "a")
    c.round("SET", "2002", "b")
    mget = c.round("MGET", "2001", "999999", "2002")
    check("MGET shape", mget == [b"a", None, b"b"])

    scan = c.round("SCAN", "0", "COUNT", "100")
    check("SCAN shape [cursor, keys]",
          isinstance(scan, list) and len(scan) == 2 and
          isinstance(scan[1], list))
    check("SCAN sees written keys",
          b"2001" in scan[1] and b"2002" in scan[1])

    # Binary-safe payload: CRLF and NUL bytes inside a bulk string.
    blob = b"bin\r\n\x00tail"
    c.round("SET", "3001", blob)
    check("binary-safe value", c.round("GET", "3001") == blob)

    # Pipelining: many commands in one write; replies come back in
    # request order.
    n = 50
    wire = b""
    for i in range(n):
        k = str(4000 + i).encode()
        wire += b"*3\r\n$3\r\nSET\r\n$%d\r\n%s\r\n$%d\r\nv%s\r\n" % (
            len(k), k, len(k) + 1, k)
    for i in range(n):
        k = str(4000 + i).encode()
        wire += b"*2\r\n$3\r\nGET\r\n$%d\r\n%s\r\n" % (len(k), k)
    c.send_raw(wire)
    ok = all(c.reply() == "OK" for _ in range(n))
    vals = [c.reply() for _ in range(n)]
    check("pipelined SETs all OK", ok)
    check("pipelined replies in request order",
          vals == [b"v%d" % (4000 + i) for i in range(n)])

    # Fragmented write: one command trickled a few bytes at a time must
    # parse identically (incremental framing).
    frag = b"*2\r\n$3\r\nGET\r\n$4\r\n4007\r\n"
    for i in range(0, len(frag), 3):
        c.send_raw(frag[i:i + 3])
        time.sleep(0.005)
    check("fragmented command parses", c.reply() == b"v4007")

    # Inline commands (the netcat framing).
    c.send_raw(b"PING\r\n")
    check("inline PING", c.reply() == "PONG")

    # Errors keep the connection usable.
    check("wrong arity is an error",
          isinstance(c.round("SET", "1"), Exception))
    check("unknown command is an error",
          isinstance(c.round("FLURB"), Exception))
    check("non-integer key is an error",
          isinstance(c.round("GET", "not-a-key"), Exception))
    check("connection survives errors", c.round("PING") == "PONG")

    # INFO renders the stock sections.
    info = c.round("INFO")
    check("INFO has Server section", b"tcp_port:" in info)
    check("INFO has Stats section",
          b"total_commands_processed:" in info)

    # Tenant namespaces: AUTH-scoped connections do not see each
    # other's keys; the prefix convention crosses namespaces.
    t1 = Resp(host, port)
    t2 = Resp(host, port)
    check("AUTH tenant-one", t1.round("AUTH", "conf-one") == "OK")
    check("AUTH tenant-two", t2.round("AUTH", "conf-two") == "OK")
    t1.round("SET", "5001", "one's data")
    check("tenant isolation", t2.round("GET", "5001") is None)
    check("prefix convention crosses tenants",
          t2.round("GET", "conf-one:5001") == b"one's data")

    # Oversized frame: error reply, then the server hangs up — and
    # stays healthy for other connections.
    big = Resp(host, port)
    big.send_raw(b"*2\r\n$3\r\nSET\r\n$99999999\r\n")
    big.send_raw(b"x" * (2 << 20))
    check("oversized frame rejected",
          isinstance(big.reply(), Exception))
    check("oversized frame closes connection", big.expect_closed())
    check("server survives oversized frame",
          Resp(host, port).round("PING") == "PONG")

    print("resp_conformance: %d checks passed" % PASSED)
    return 0


if __name__ == "__main__":
    sys.exit(main())
