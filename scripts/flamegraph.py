#!/usr/bin/env python3
"""Render prism collapsed-stack profiles as a flame graph SVG.

Input is the folded format emitted by the prism profiler
(common/prof.h): one stack per line, frames root-first separated by
';', a space, and a sample count. Lines starting with '#' are
comments. The CPU profile prefixes each stack with its Prism layer
(and span, when one was active): `pwb;span:reclaim_pass;frameA;frameB 12`.
The lock-contention export uses the same shape with wait-microseconds
as the count.

Stdlib only — no d3, no browser requirement; the SVG is
self-contained (hover titles via <title>, no JS).

Usage:
    flamegraph.py profile.txt [-o out.svg] [--title T] [--width W]
    flamegraph.py profile.txt --check [--min-symbolized F]
                  [--require-layer L]... [--require-frame SUBSTR]...

--check validates instead of rendering (CI uses it): exits non-zero
when the profile has no samples, when fewer than --min-symbolized of
its frames resolved to names (0x... frames are unsymbolized), when a
--require-layer never appears as a stack's root, or when no frame
contains a --require-frame substring.
"""

import argparse
import sys
from html import escape


def parse_folded(path):
    """-> (stacks, comments): [( [frames...], count )], ['# ...']."""
    stacks, comments = [], []
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        for line in f:
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("#"):
                comments.append(line)
                continue
            head, sep, count = line.rpartition(" ")
            if not sep:
                continue
            try:
                n = int(float(count))
            except ValueError:
                continue
            frames = [fr for fr in head.split(";") if fr]
            if frames and n > 0:
                stacks.append((frames, n))
    return stacks, comments


class Node:
    __slots__ = ("name", "value", "children")

    def __init__(self, name):
        self.name = name
        self.value = 0
        self.children = {}

    def add(self, frames, count):
        self.value += count
        if not frames:
            return
        child = self.children.get(frames[0])
        if child is None:
            child = self.children[frames[0]] = Node(frames[0])
        child.add(frames[1:], count)


# Warm palette keyed by a stable hash of the frame name, so the same
# function gets the same colour across profiles (easy diffing by eye).
def color_for(name):
    h = 2166136261
    for ch in name:
        h = ((h ^ ord(ch)) * 16777619) & 0xFFFFFFFF
    r = 205 + (h & 0x3F) % 50
    g = 80 + ((h >> 8) & 0xFF) % 100
    b = ((h >> 16) & 0x3F) % 60
    return f"rgb({r},{g},{b})"


def render_svg(root, title, width):
    row_h = 16
    font_px = 11

    def depth(node):
        return 1 + max((depth(c) for c in node.children.values()),
                       default=0)

    height = (depth(root) + 2) * row_h + 24
    total = root.value or 1
    parts = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" '
        f'font-size="{font_px}px">'
    )
    parts.append(
        f'<rect width="100%" height="100%" fill="#f8f8f8"/>'
        f'<text x="{width // 2}" y="15" text-anchor="middle" '
        f'font-size="13px">{escape(title)}</text>'
    )

    def emit(node, x, y, w):
        if w < 0.5:
            return
        pct = 100.0 * node.value / total
        label = node.name if node.name else "all"
        parts.append(
            f'<g><title>{escape(label)} — {node.value} samples '
            f"({pct:.1f}%)</title>"
            f'<rect x="{x:.2f}" y="{y}" width="{w:.2f}" '
            f'height="{row_h - 1}" fill="{color_for(label)}" '
            f'rx="1"/>'
        )
        # ~0.6 em per glyph; clip the label to its box.
        max_chars = int(w / (font_px * 0.62))
        if max_chars >= 3:
            text = label if len(label) <= max_chars else (
                label[: max_chars - 1] + "…")
            parts.append(
                f'<text x="{x + 2:.2f}" y="{y + row_h - 5}" '
                f'fill="#111">{escape(text)}</text>'
            )
        parts.append("</g>")
        cx = x
        for child in sorted(node.children.values(),
                            key=lambda c: -c.value):
            cw = w * child.value / node.value if node.value else 0
            emit(child, cx, y + row_h, cw)
            cx += cw

    emit(root, 0, 24, width)
    parts.append("</svg>")
    return "\n".join(parts)


def check(stacks, comments, args):
    errors = []
    total = sum(n for _, n in stacks)
    if total == 0:
        errors.append("profile contains no samples")
    sym = unsym = 0
    for frames, n in stacks:
        for fr in frames:
            if fr.startswith("0x"):
                unsym += n
            else:
                sym += n
    frac = sym / (sym + unsym) if (sym + unsym) else 0.0
    if frac < args.min_symbolized:
        errors.append(
            f"symbolized frame fraction {frac:.2f} < "
            f"{args.min_symbolized:.2f}"
        )
    roots = {frames[0] for frames, _ in stacks if frames}
    for layer in args.require_layer:
        if layer not in roots:
            errors.append(
                f"required layer '{layer}' never roots a stack "
                f"(roots seen: {sorted(roots)})"
            )
    for needle in args.require_frame:
        if not any(needle in fr for frames, _ in stacks
                   for fr in frames):
            errors.append(f"no frame contains '{needle}'")
    for e in errors:
        print(f"flamegraph check: FAIL: {e}", file=sys.stderr)
    if not errors:
        print(
            f"flamegraph check: OK — {total} samples, "
            f"{len(stacks)} stacks, {frac:.0%} symbolized, "
            f"roots: {sorted(roots)}"
        )
    return 1 if errors else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("input", help="collapsed-stack profile file")
    ap.add_argument("-o", "--output", help="SVG output path "
                    "(default: <input>.svg)")
    ap.add_argument("--title", default=None)
    ap.add_argument("--width", type=int, default=1200)
    ap.add_argument("--check", action="store_true",
                    help="validate instead of rendering")
    ap.add_argument("--min-symbolized", type=float, default=0.0,
                    help="check: minimum symbolized frame fraction")
    ap.add_argument("--require-layer", action="append", default=[],
                    help="check: layer that must root >=1 stack")
    ap.add_argument("--require-frame", action="append", default=[],
                    help="check: substring some frame must contain")
    args = ap.parse_args()

    stacks, comments = parse_folded(args.input)

    if args.check:
        sys.exit(check(stacks, comments, args))

    if not stacks:
        print(f"{args.input}: no stacks to render", file=sys.stderr)
        sys.exit(1)

    root = Node("")
    for frames, n in stacks:
        root.add(frames, n)

    title = args.title
    if title is None:
        title = comments[0].lstrip("# ") if comments else args.input
    out = args.output or (args.input + ".svg")
    svg = render_svg(root, title, args.width)
    with open(out, "w", encoding="utf-8") as f:
        f.write(svg)
    print(f"wrote {out} ({sum(n for _, n in stacks)} samples, "
          f"{len(stacks)} stacks)")


if __name__ == "__main__":
    main()
