#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the test suite, then a
# smoke run of the microbenchmarks with the --stats registry dump.
#
# By default this runs the fast test slice (`ctest -L fast`, seconds
# per suite — includes torture_smoke, a seconds-scale run of the
# crash-torture harness). Set PRISM_VERIFY_ALL=1 for the full suite
# including the slow property/stress tests; CI sets it.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc)"
if [[ "${PRISM_VERIFY_ALL:-0}" == "1" ]]; then
    ctest --test-dir build --output-on-failure -j"$(nproc)"
else
    ctest --test-dir build --output-on-failure -j"$(nproc)" -L fast
fi

# Smoke: one fast microbench iteration must exit cleanly and the
# registry dump must mention known metrics (BM_PwbAppend1K touches the
# pmem layer and the PWB, so sim.nvm.*, pmem.* and prism.pwb.* appear).
./build/bench/bench_micro --stats \
    --benchmark_filter=BM_PwbAppend1K \
    --benchmark_min_time=0.01 2> /tmp/prism_stats_smoke.txt
grep -q "prism\.pwb\.appends" /tmp/prism_stats_smoke.txt || {
    echo "verify.sh: --stats dump missing registry metrics" >&2
    exit 1
}

# Optional wire-level smoke (PRISM_VERIFY_SERVER=1): boot prism_server
# on an ephemeral port, run the raw-socket conformance script, then a
# short open-loop prism_loadgen burst — the local mirror of CI's
# `server` job (docs/SERVER.md).
if [[ "${PRISM_VERIFY_SERVER:-0}" == "1" ]]; then
    SRV_OUT=$(mktemp) SRV_ERR=$(mktemp)
    ./build/examples/prism_server --port=0 --obs-port=-1 \
        > "${SRV_OUT}" 2> "${SRV_ERR}" &
    SRV_PID=$!
    trap 'kill "${SRV_PID}" 2>/dev/null || true' EXIT
    PORT=""
    for _ in $(seq 1 50); do
        PORT=$(grep -oam1 'resp listening on 127.0.0.1:[0-9]*' \
               "${SRV_OUT}" | grep -oE '[0-9]+$' || true)
        [[ -n "${PORT}" ]] && break
        sleep 0.2
    done
    [[ -n "${PORT}" ]] || {
        echo "verify.sh: prism_server never announced a port" >&2
        cat "${SRV_ERR}" >&2
        exit 1
    }
    python3 scripts/resp_conformance.py "${PORT}"
    ./build/bench/prism_loadgen --port="${PORT}" --load \
        --records=5000 --conns=2
    ./build/bench/prism_loadgen --port="${PORT}" --mix=c --rate=2000 \
        --duration=5 --records=5000 --conns=2
    kill -TERM "${SRV_PID}"
    wait "${SRV_PID}"
    trap - EXIT
fi
echo "verify.sh: OK"
