#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the test suite, then a
# smoke run of the microbenchmarks with the --stats registry dump.
#
# By default this runs the fast test slice (`ctest -L fast`, seconds
# per suite — includes torture_smoke, a seconds-scale run of the
# crash-torture harness). Set PRISM_VERIFY_ALL=1 for the full suite
# including the slow property/stress tests; CI sets it.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc)"
if [[ "${PRISM_VERIFY_ALL:-0}" == "1" ]]; then
    ctest --test-dir build --output-on-failure -j"$(nproc)"
else
    ctest --test-dir build --output-on-failure -j"$(nproc)" -L fast
fi

# Smoke: one fast microbench iteration must exit cleanly and the
# registry dump must mention known metrics (BM_PwbAppend1K touches the
# pmem layer and the PWB, so sim.nvm.*, pmem.* and prism.pwb.* appear).
./build/bench/bench_micro --stats \
    --benchmark_filter=BM_PwbAppend1K \
    --benchmark_min_time=0.01 2> /tmp/prism_stats_smoke.txt
grep -q "prism\.pwb\.appends" /tmp/prism_stats_smoke.txt || {
    echo "verify.sh: --stats dump missing registry metrics" >&2
    exit 1
}
echo "verify.sh: OK"
