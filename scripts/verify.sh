#!/usr/bin/env bash
# Tier-1 verification: configure, build, run every test suite, then a
# smoke run of the microbenchmarks with the --stats registry dump.
# CI calls exactly this script; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

# Smoke: one fast microbench iteration must exit cleanly and the
# registry dump must mention known metrics (BM_PwbAppend1K touches the
# pmem layer and the PWB, so sim.nvm.*, pmem.* and prism.pwb.* appear).
./build/bench/bench_micro --stats \
    --benchmark_filter=BM_PwbAppend1K \
    --benchmark_min_time=0.01 2> /tmp/prism_stats_smoke.txt
grep -q "prism\.pwb\.appends" /tmp/prism_stats_smoke.txt || {
    echo "verify.sh: --stats dump missing registry metrics" >&2
    exit 1
}
echo "verify.sh: OK"
