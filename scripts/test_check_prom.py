#!/usr/bin/env python3
"""Unit tests for check_prom.py (stdlib only; run via ctest or
``python3 scripts/test_check_prom.py``)."""

import io
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stderr, redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_prom  # noqa: E402

GOOD = """\
# TYPE prism_puts_total counter
prism_puts_total 12345
# TYPE prism_pwb_used_bytes gauge
prism_pwb_used_bytes{pwb="0"} 1048576
prism_pwb_used_bytes{pwb="1"} 524288
# TYPE prism_op_latency_ns histogram
prism_op_latency_ns_bucket{op="put",le="1000"} 10
prism_op_latency_ns_bucket{op="put",le="10000"} 42
prism_op_latency_ns_bucket{op="put",le="+Inf"} 50
prism_op_latency_ns_sum{op="put"} 123456
prism_op_latency_ns_count{op="put"} 50
"""


class CheckPromTest(unittest.TestCase):
    def run_check(self, text):
        with tempfile.TemporaryDirectory() as d:
            path = os.path.join(d, "metrics.txt")
            with open(path, "w", encoding="utf-8") as f:
                f.write(text)
            out, err = io.StringIO(), io.StringIO()
            argv = sys.argv
            sys.argv = ["check_prom.py", path]
            try:
                with redirect_stdout(out), redirect_stderr(err):
                    code = check_prom.main()
            finally:
                sys.argv = argv
            return code, out.getvalue(), err.getvalue()

    def test_valid_exposition_passes(self):
        code, out, err = self.run_check(GOOD)
        self.assertEqual(code, 0, err)
        self.assertIn("OK", out)
        self.assertIn("1 histograms", out)

    def test_untyped_sample_fails(self):
        code, _, err = self.run_check("prism_mystery_total 1\n")
        self.assertEqual(code, 1)
        self.assertIn("no TYPE", err)

    def test_counter_without_total_suffix_fails(self):
        code, _, err = self.run_check(
            "# TYPE prism_puts counter\nprism_puts 1\n")
        self.assertEqual(code, 1)
        self.assertIn("_total", err)

    def test_duplicate_sample_fails(self):
        code, _, err = self.run_check(
            "# TYPE x_total counter\nx_total 1\nx_total 2\n")
        self.assertEqual(code, 1)
        self.assertIn("duplicate sample", err)

    def test_duplicate_type_fails(self):
        code, _, err = self.run_check(
            "# TYPE x_total counter\n# TYPE x_total counter\n"
            "x_total 1\n")
        self.assertEqual(code, 1)
        self.assertIn("duplicate TYPE", err)

    def test_unparseable_sample_fails(self):
        code, _, err = self.run_check(
            "# TYPE x_total counter\nx_total one two three four\n")
        self.assertEqual(code, 1)
        self.assertIn("unparseable", err)

    def test_bad_value_fails(self):
        code, _, err = self.run_check(
            "# TYPE x_total counter\nx_total abc\n")
        self.assertEqual(code, 1)

    def test_non_cumulative_histogram_fails(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 10\n'
            'h_bucket{le="2"} 5\n'
            'h_bucket{le="+Inf"} 10\n'
            "h_sum 1\n"
            "h_count 10\n"
        )
        code, _, err = self.run_check(bad)
        self.assertEqual(code, 1)
        self.assertIn("not cumulative", err)

    def test_histogram_missing_inf_bucket_fails(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 10\n'
            "h_sum 1\n"
            "h_count 10\n"
        )
        code, _, err = self.run_check(bad)
        self.assertEqual(code, 1)
        self.assertIn("+Inf", err)

    def test_histogram_inf_count_mismatch_fails(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 9\n'
            "h_sum 1\n"
            "h_count 10\n"
        )
        code, _, err = self.run_check(bad)
        self.assertEqual(code, 1)
        self.assertIn("!= _count", err)

    def test_histogram_missing_count_fails(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 10\n'
            "h_sum 1\n"
        )
        code, _, err = self.run_check(bad)
        self.assertEqual(code, 1)
        self.assertIn("missing _count", err)

    def test_bad_label_syntax_fails(self):
        code, _, err = self.run_check(
            "# TYPE g gauge\ng{oops} 1\n")
        self.assertEqual(code, 1)
        self.assertIn("bad label syntax", err)

    def test_inf_and_nan_values_parse(self):
        code, _, err = self.run_check("# TYPE g gauge\ng +Inf\n")
        self.assertEqual(code, 0, err)


if __name__ == "__main__":
    unittest.main()
