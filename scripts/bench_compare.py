#!/usr/bin/env python3
"""Compare two bench result files and flag regressions.

Usage:
    bench_compare.py BASELINE CURRENT [--warn-only] [--tol METRIC=FRAC]
    bench_compare.py A_ROWS B_ROWS --ab [--ab-alpha=P]
                     [--ab-min-effect=FRAC] [--warn-only]

Each file is either an assembled ``BENCH_pr<N>.json`` document (a JSON
object whose values are arrays of row objects, as written by
``run_benches.sh``) or a raw JSON-lines rows file (one row object per
line, as written by the benches via ``PRISM_BENCH_JSON``). Rows are
matched across the two files by their identity fields (figure, store,
mix/workload, threads, ...), then every gated metric present in both
rows is compared against a per-metric tolerance:

    metric     direction       default tolerance
    kops       higher better   15%
    p50_us     lower better    30%
    p90_us     lower better    30%
    p99_us     lower better    30%
    p999_us    lower better    40%
    avg_us     lower better    30%
    waf        lower better    10%

Tolerances are deliberately loose: the benches are reduced-scale
simulations and run on shared CI machines, so the gate is meant to
catch step-change regressions (a lock added to a hot path, an
accidental O(n) scan), not single-digit noise.

fig17 timeline rows (those with a ``t_s`` field) are per-window
samples, not steady-state results, and are skipped. Other fields that
are neither identity nor gated metrics (pwb_stalls, bg_tasks,
gc_passes, slow_ops, ...) are informational and ignored.

Paired A/B mode (``--ab``): instead of comparing one row per config
against an absolute tolerance, both inputs hold *repeated* runs of the
same configs (interleaved A/B reps of two binaries, or two row files
from the same machine and session). Rows are paired by identity key in
occurrence order, per-pair win/loss is tallied per metric, and an
exact one-sided binomial sign test asks "is B worse than A more often
than chance?". The gate fails only when that is statistically
significant (``--ab-alpha``, default 0.05) AND the median relative
drop exceeds a practical floor (``--ab-min-effect``, default 0.02).
This makes the gate robust to machine-to-machine drift: a slow CI
runner shifts A and B together, so the pairing cancels it, where the
absolute tolerances of the default mode either mask regressions or
fire on noise.

Exit status: 0 = no regression (or --warn-only), 1 = at least one
metric regressed beyond tolerance, 2 = bad invocation or unreadable
input. Prints a delta table either way.
"""

import json
import math
import sys

# metric -> (higher_is_better, default tolerance as a fraction)
METRICS = {
    "kops": (True, 0.15),
    "p50_us": (False, 0.30),
    "p90_us": (False, 0.30),
    "p99_us": (False, 0.30),
    "p999_us": (False, 0.40),
    "avg_us": (False, 0.30),
    "waf": (False, 0.10),
}

# Row fields that identify *what* was measured. Everything else in a
# row is either a gated metric (METRICS) or informational.
IDENTITY_FIELDS = (
    "figure",
    "store",
    "mix",
    "workload",
    "threads",
    "row",
    "value_bytes",
    "theta",
    "ssds",
    # Optional identity tags (absent on default runs, so old baselines
    # keep their original keys): non-sim runs carry "backend", sharded
    # Prism runs carry "shards" (bench/bench_util.h).
    "backend",
    "shards",
)


def load_rows(path):
    """Return the list of row dicts in *path* (document or JSON-lines)."""
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    text = text.strip()
    if not text:
        return []
    if text.startswith("{") and not text.startswith('{"figure"'):
        doc = json.loads(text)
        rows = []
        for value in doc.values():
            if isinstance(value, list):
                rows.extend(r for r in value if isinstance(r, dict))
        return rows
    rows = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            rows.append(json.loads(line))
    return rows


def row_key(row):
    return tuple(
        (f, row[f]) for f in IDENTITY_FIELDS if f in row
    )


def index_rows(rows):
    """Key rows by identity; skip timeline samples; last write wins."""
    out = {}
    skipped = 0
    for row in rows:
        if "t_s" in row:  # fig17 per-window timeline sample
            skipped += 1
            continue
        if not any(m in row for m in METRICS):
            skipped += 1
            continue
        out[row_key(row)] = row
    return out, skipped


def index_rows_multi(rows):
    """Key rows by identity, keeping every occurrence in file order."""
    out = {}
    skipped = 0
    for row in rows:
        if "t_s" in row:
            skipped += 1
            continue
        if not any(m in row for m in METRICS):
            skipped += 1
            continue
        out.setdefault(row_key(row), []).append(row)
    return out, skipped


def sign_test_p(worse, better):
    """One-sided exact binomial P(X >= worse | n, 1/2); ties dropped."""
    n = worse + better
    if n == 0:
        return 1.0
    return sum(math.comb(n, k) for k in range(worse, n + 1)) / 2.0**n


def run_ab(a_rows, b_rows, alpha, min_effect, warn_only):
    """Paired sign-test gate; returns the process exit code."""
    a_idx, a_skipped = index_rows_multi(a_rows)
    b_idx, b_skipped = index_rows_multi(b_rows)
    common = [k for k in a_idx if k in b_idx]
    if not common:
        print("no comparable rows "
              f"(A: {len(a_idx)} keys, {a_skipped} skipped; "
              f"B: {len(b_idx)} keys, {b_skipped} skipped)",
              file=sys.stderr)
        return 2

    # metric -> list of per-pair relative deltas, signed so that
    # positive always means "B worse than A".
    worse_deltas = {m: [] for m in METRICS}
    pairs_used = 0
    pairs_dropped = 0
    for key in common:
        a_list, b_list = a_idx[key], b_idx[key]
        n = min(len(a_list), len(b_list))
        pairs_dropped += (len(a_list) - n) + (len(b_list) - n)
        for i in range(n):
            a_row, b_row = a_list[i], b_list[i]
            used = False
            for metric, (higher_better, _) in METRICS.items():
                if metric not in a_row or metric not in b_row:
                    continue
                a_v, b_v = float(a_row[metric]), float(b_row[metric])
                if a_v == 0.0:
                    continue
                delta = (b_v - a_v) / a_v
                worse_deltas[metric].append(
                    -delta if higher_better else delta)
                used = True
            if used:
                pairs_used += 1

    print(f"{'metric':<8} {'pairs':>5} {'B worse':>8} {'B better':>9} "
          f"{'median':>8} {'p-value':>8}  status")
    regressions = 0
    for metric, deltas in worse_deltas.items():
        if not deltas:
            continue
        worse = sum(1 for d in deltas if d > 0)
        better = sum(1 for d in deltas if d < 0)
        p = sign_test_p(worse, better)
        ordered = sorted(deltas)
        mid = len(ordered) // 2
        median = (ordered[mid] if len(ordered) % 2
                  else (ordered[mid - 1] + ordered[mid]) / 2)
        # Significantly worse AND by more than the practical floor.
        if p <= alpha and median > min_effect:
            status = "REGRESSION"
            regressions += 1
        elif (sign_test_p(better, worse) <= alpha
              and median < -min_effect):
            status = "improved"
        else:
            status = "ok"
        print(f"{metric:<8} {len(deltas):>5} {worse:>8} {better:>9} "
              f"{median:>+7.1%} {p:>8.3f}  {status}")

    print(f"\n--ab: {pairs_used} pairs across {len(common)} configs "
          f"({pairs_dropped} unpaired reps dropped); "
          f"alpha={alpha} min-effect={min_effect:.0%}; "
          f"{regressions} regression(s)")
    if regressions and warn_only:
        print("--warn-only: not failing the gate")
        return 0
    return 1 if regressions else 0


def fmt_key(key):
    return " ".join(
        str(v) for f, v in key if f != "figure"
    ) or "(unnamed)"


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    opts = [a for a in argv[1:] if a.startswith("--")]
    if len(args) != 2:
        print(__doc__.strip().splitlines()[2].strip(), file=sys.stderr)
        return 2

    warn_only = False
    ab_mode = False
    ab_alpha = 0.05
    ab_min_effect = 0.02
    tolerances = {m: tol for m, (_, tol) in METRICS.items()}
    for opt in opts:
        if opt == "--warn-only":
            warn_only = True
        elif opt == "--ab":
            ab_mode = True
        elif opt.startswith("--ab-alpha="):
            try:
                ab_alpha = float(opt.split("=", 1)[1])
            except ValueError:
                print(f"bad option {opt!r}: use --ab-alpha=FLOAT",
                      file=sys.stderr)
                return 2
        elif opt.startswith("--ab-min-effect="):
            try:
                ab_min_effect = float(opt.split("=", 1)[1])
            except ValueError:
                print(f"bad option {opt!r}: use --ab-min-effect=FRAC",
                      file=sys.stderr)
                return 2
        elif opt.startswith("--tol"):
            try:
                spec = opt.split("=", 1)[1] if "=" in opt else ""
                metric, frac = spec.split(":") if ":" in spec else spec.split(
                    ",")
            except ValueError:
                print(f"bad option {opt!r}: use --tol=METRIC:FRAC",
                      file=sys.stderr)
                return 2
            if metric not in METRICS:
                print(f"unknown metric {metric!r} "
                      f"(known: {', '.join(METRICS)})", file=sys.stderr)
                return 2
            tolerances[metric] = float(frac)
        else:
            print(f"unknown option {opt!r}", file=sys.stderr)
            return 2

    try:
        base_rows = load_rows(args[0])
        cur_rows = load_rows(args[1])
    except (OSError, json.JSONDecodeError) as e:
        print(f"cannot load input: {e}", file=sys.stderr)
        return 2

    if ab_mode:
        return run_ab(base_rows, cur_rows, ab_alpha, ab_min_effect,
                      warn_only)

    base, base_skipped = index_rows(base_rows)
    cur, cur_skipped = index_rows(cur_rows)
    common = [k for k in base if k in cur]
    if not common:
        print("no comparable rows "
              f"(baseline: {len(base)} keyed rows, {base_skipped} skipped; "
              f"current: {len(cur)} keyed rows, {cur_skipped} skipped)",
              file=sys.stderr)
        return 2

    print(f"{'figure':<8} {'row':<34} {'metric':<8} "
          f"{'baseline':>10} {'current':>10} {'delta':>8}  status")
    regressions = 0
    improvements = 0
    compared = 0
    for key in common:
        b_row, c_row = base[key], cur[key]
        figure = dict(key).get("figure", "?")
        for metric, (higher_better, _) in METRICS.items():
            if metric not in b_row or metric not in c_row:
                continue
            b, c = float(b_row[metric]), float(c_row[metric])
            compared += 1
            if b == 0.0:
                delta = 0.0 if c == 0.0 else float("inf")
            else:
                delta = (c - b) / b
            worse = -delta if higher_better else delta
            tol = tolerances[metric]
            if worse > tol:
                status = "REGRESSION"
                regressions += 1
            elif worse < -tol:
                status = "improved"
                improvements += 1
            else:
                status = "ok"
            print(f"{figure:<8} {fmt_key(key):<34.34} {metric:<8} "
                  f"{b:>10.1f} {c:>10.1f} {delta:>+7.1%}  {status}")

    unmatched = (len(base) - len(common)) + (len(cur) - len(common))
    print(f"\n{compared} metrics compared across {len(common)} rows "
          f"({unmatched} unmatched rows); "
          f"{regressions} regression(s), {improvements} improvement(s)")
    if regressions and warn_only:
        print("--warn-only: not failing the gate")
        return 0
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
