#!/usr/bin/env python3
"""Compare two bench result files and flag regressions.

Usage:
    bench_compare.py BASELINE CURRENT [--warn-only] [--tol METRIC=FRAC]

Each file is either an assembled ``BENCH_pr<N>.json`` document (a JSON
object whose values are arrays of row objects, as written by
``run_benches.sh``) or a raw JSON-lines rows file (one row object per
line, as written by the benches via ``PRISM_BENCH_JSON``). Rows are
matched across the two files by their identity fields (figure, store,
mix/workload, threads, ...), then every gated metric present in both
rows is compared against a per-metric tolerance:

    metric     direction       default tolerance
    kops       higher better   15%
    p50_us     lower better    30%
    p90_us     lower better    30%
    p99_us     lower better    30%
    p999_us    lower better    40%
    avg_us     lower better    30%
    waf        lower better    10%

Tolerances are deliberately loose: the benches are reduced-scale
simulations and run on shared CI machines, so the gate is meant to
catch step-change regressions (a lock added to a hot path, an
accidental O(n) scan), not single-digit noise.

fig17 timeline rows (those with a ``t_s`` field) are per-window
samples, not steady-state results, and are skipped. Other fields that
are neither identity nor gated metrics (pwb_stalls, bg_tasks,
gc_passes, slow_ops, ...) are informational and ignored.

Exit status: 0 = no regression (or --warn-only), 1 = at least one
metric regressed beyond tolerance, 2 = bad invocation or unreadable
input. Prints a delta table either way.
"""

import json
import sys

# metric -> (higher_is_better, default tolerance as a fraction)
METRICS = {
    "kops": (True, 0.15),
    "p50_us": (False, 0.30),
    "p90_us": (False, 0.30),
    "p99_us": (False, 0.30),
    "p999_us": (False, 0.40),
    "avg_us": (False, 0.30),
    "waf": (False, 0.10),
}

# Row fields that identify *what* was measured. Everything else in a
# row is either a gated metric (METRICS) or informational.
IDENTITY_FIELDS = (
    "figure",
    "store",
    "mix",
    "workload",
    "threads",
    "row",
    "value_bytes",
    "theta",
    "ssds",
    # Optional identity tags (absent on default runs, so old baselines
    # keep their original keys): non-sim runs carry "backend", sharded
    # Prism runs carry "shards" (bench/bench_util.h).
    "backend",
    "shards",
)


def load_rows(path):
    """Return the list of row dicts in *path* (document or JSON-lines)."""
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    text = text.strip()
    if not text:
        return []
    if text.startswith("{") and not text.startswith('{"figure"'):
        doc = json.loads(text)
        rows = []
        for value in doc.values():
            if isinstance(value, list):
                rows.extend(r for r in value if isinstance(r, dict))
        return rows
    rows = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            rows.append(json.loads(line))
    return rows


def row_key(row):
    return tuple(
        (f, row[f]) for f in IDENTITY_FIELDS if f in row
    )


def index_rows(rows):
    """Key rows by identity; skip timeline samples; last write wins."""
    out = {}
    skipped = 0
    for row in rows:
        if "t_s" in row:  # fig17 per-window timeline sample
            skipped += 1
            continue
        if not any(m in row for m in METRICS):
            skipped += 1
            continue
        out[row_key(row)] = row
    return out, skipped


def fmt_key(key):
    return " ".join(
        str(v) for f, v in key if f != "figure"
    ) or "(unnamed)"


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    opts = [a for a in argv[1:] if a.startswith("--")]
    if len(args) != 2:
        print(__doc__.strip().splitlines()[2].strip(), file=sys.stderr)
        return 2

    warn_only = False
    tolerances = {m: tol for m, (_, tol) in METRICS.items()}
    for opt in opts:
        if opt == "--warn-only":
            warn_only = True
        elif opt.startswith("--tol"):
            try:
                spec = opt.split("=", 1)[1] if "=" in opt else ""
                metric, frac = spec.split(":") if ":" in spec else spec.split(
                    ",")
            except ValueError:
                print(f"bad option {opt!r}: use --tol=METRIC:FRAC",
                      file=sys.stderr)
                return 2
            if metric not in METRICS:
                print(f"unknown metric {metric!r} "
                      f"(known: {', '.join(METRICS)})", file=sys.stderr)
                return 2
            tolerances[metric] = float(frac)
        else:
            print(f"unknown option {opt!r}", file=sys.stderr)
            return 2

    try:
        base_rows = load_rows(args[0])
        cur_rows = load_rows(args[1])
    except (OSError, json.JSONDecodeError) as e:
        print(f"cannot load input: {e}", file=sys.stderr)
        return 2

    base, base_skipped = index_rows(base_rows)
    cur, cur_skipped = index_rows(cur_rows)
    common = [k for k in base if k in cur]
    if not common:
        print("no comparable rows "
              f"(baseline: {len(base)} keyed rows, {base_skipped} skipped; "
              f"current: {len(cur)} keyed rows, {cur_skipped} skipped)",
              file=sys.stderr)
        return 2

    print(f"{'figure':<8} {'row':<34} {'metric':<8} "
          f"{'baseline':>10} {'current':>10} {'delta':>8}  status")
    regressions = 0
    improvements = 0
    compared = 0
    for key in common:
        b_row, c_row = base[key], cur[key]
        figure = dict(key).get("figure", "?")
        for metric, (higher_better, _) in METRICS.items():
            if metric not in b_row or metric not in c_row:
                continue
            b, c = float(b_row[metric]), float(c_row[metric])
            compared += 1
            if b == 0.0:
                delta = 0.0 if c == 0.0 else float("inf")
            else:
                delta = (c - b) / b
            worse = -delta if higher_better else delta
            tol = tolerances[metric]
            if worse > tol:
                status = "REGRESSION"
                regressions += 1
            elif worse < -tol:
                status = "improved"
                improvements += 1
            else:
                status = "ok"
            print(f"{figure:<8} {fmt_key(key):<34.34} {metric:<8} "
                  f"{b:>10.1f} {c:>10.1f} {delta:>+7.1%}  {status}")

    unmatched = (len(base) - len(common)) + (len(cur) - len(common))
    print(f"\n{compared} metrics compared across {len(common)} rows "
          f"({unmatched} unmatched rows); "
          f"{regressions} regression(s), {improvements} improvement(s)")
    if regressions and warn_only:
        print("--warn-only: not failing the gate")
        return 0
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
