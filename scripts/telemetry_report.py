#!/usr/bin/env python3
"""Render a telemetry series JSON into a self-contained HTML report.

Usage:
    telemetry_report.py SERIES.json [-o REPORT.html]

SERIES.json is the columnar "prism.telemetry.v1" document written by
``Telemetry::exportSeriesJsonToFile`` (every bench's
``--telemetry=<file>`` flag, or ``telemetry dump`` in prism_cli). The
report is one HTML file with inline SVG line charts — no external
assets, no third-party libraries — so it can be attached to a CI run
or mailed around:

  * operation rates (puts/gets/dels/scans per second),
  * per-layer CPU attribution (busy cores per layer, from tracer
    span self-time; all-zero unless tracing was enabled),
  * occupancy (PWB fill and SVC bytes against capacity),
  * per-device throughput and utilization,
  * background pipeline rates (PWB reclaim, value-storage GC, SSD
    bytes), which is where fig17-style GC/reclaim phases show up,
  * a table of the busiest counters over the whole run.

See docs/OBSERVABILITY.md, "Time series & resource attribution".
"""

import json
import sys

CHART_W, CHART_H, PAD = 720, 180, 42

PALETTE = [
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
    "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
]


def esc(s):
    return (str(s).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


def fmt_si(v):
    for cut, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "K")):
        if abs(v) >= cut:
            return f"{v / cut:.3g}{suffix}"
    return f"{v:.3g}"


def svg_chart(title, t_s, series, unit=""):
    """One SVG line chart. series = [(label, [float values]), ...]."""
    series = [(lab, vals) for lab, vals in series if vals]
    if not t_s or not series:
        return ""
    t0, t1 = t_s[0], t_s[-1]
    t_span = (t1 - t0) or 1.0
    vmax = max(max(vals) for _, vals in series)
    vmin = min(0.0, min(min(vals) for _, vals in series))
    v_span = (vmax - vmin) or 1.0

    def x(t):
        return PAD + (t - t0) / t_span * (CHART_W - 2 * PAD)

    def y(v):
        return CHART_H - PAD / 2 - (v - vmin) / v_span * (CHART_H - PAD)

    parts = [
        f'<svg width="{CHART_W}" height="{CHART_H + 20 * len(series)}" '
        f'xmlns="http://www.w3.org/2000/svg" '
        f'font-family="sans-serif" font-size="11">',
        f'<text x="{PAD}" y="14" font-size="13" font-weight="bold">'
        f'{esc(title)}</text>',
        f'<line x1="{PAD}" y1="{y(vmin)}" x2="{CHART_W - PAD}" '
        f'y2="{y(vmin)}" stroke="#999"/>',
        f'<line x1="{PAD}" y1="{y(vmin)}" x2="{PAD}" y2="{y(vmax)}" '
        f'stroke="#999"/>',
        f'<text x="{PAD - 4}" y="{y(vmax) + 4}" text-anchor="end">'
        f'{fmt_si(vmax)}{esc(unit)}</text>',
        f'<text x="{PAD - 4}" y="{y(vmin) + 4}" text-anchor="end">'
        f'{fmt_si(vmin)}</text>',
        f'<text x="{PAD}" y="{CHART_H - 2}">{t0:.1f}s</text>',
        f'<text x="{CHART_W - PAD}" y="{CHART_H - 2}" '
        f'text-anchor="end">{t1:.1f}s</text>',
    ]
    for i, (label, vals) in enumerate(series):
        color = PALETTE[i % len(PALETTE)]
        pts = " ".join(
            f"{x(t):.1f},{y(v):.1f}" for t, v in zip(t_s, vals))
        parts.append(f'<polyline points="{pts}" fill="none" '
                     f'stroke="{color}" stroke-width="1.5"/>')
        ly = CHART_H + 14 + 20 * i
        parts.append(f'<rect x="{PAD}" y="{ly - 9}" width="12" '
                     f'height="3" fill="{color}"/>')
        total = sum(vals)
        parts.append(f'<text x="{PAD + 18}" y="{ly}">{esc(label)} '
                     f'(peak {fmt_si(max(vals))}{esc(unit)}, '
                     f'total {fmt_si(total)})</text>')
    parts.append("</svg>")
    return "".join(parts)


def rates(doc, name):
    """Counter deltas -> per-second rates; None when the series is
    absent or all-zero."""
    deltas = doc.get("counters", {}).get(name)
    if not deltas or not any(deltas):
        return None
    return [d / dt if dt > 0 else 0.0
            for d, dt in zip(deltas, doc["dt_s"])]


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("-")]
    out_path = "telemetry-report.html"
    for i, a in enumerate(argv[1:], 1):
        if a == "-o" and i < len(argv) - 1:
            out_path = argv[i + 1]
            args = [x for x in args if x != argv[i + 1]]
    if len(args) != 1:
        print("usage: telemetry_report.py SERIES.json [-o REPORT.html]",
              file=sys.stderr)
        return 2

    with open(args[0], "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "prism.telemetry.v1":
        print(f"unrecognized schema {doc.get('schema')!r}",
              file=sys.stderr)
        return 2
    t_s = doc.get("t_s", [])
    if not t_s:
        print("series is empty — nothing to render", file=sys.stderr)
        return 2

    charts = []

    charts.append(svg_chart(
        "Operation rates (ops/s)", t_s,
        [(n.split(".")[-1], rates(doc, n) or [])
         for n in ("prism.puts", "prism.gets", "prism.dels",
                   "prism.scans")]))

    layers = doc.get("layers_busy_ns", {})
    charts.append(svg_chart(
        "CPU attribution (busy cores per layer; needs tracing)", t_s,
        [(lay, [ns / (dt * 1e9) if dt > 0 else 0.0
                for ns, dt in zip(vals, doc["dt_s"])])
         for lay, vals in layers.items() if any(vals)]))

    gauges = doc.get("gauges", {})
    occ = []
    for label, name in (("pwb used", "prism.pwb.used_bytes"),
                        ("pwb capacity", "prism.pwb.capacity_bytes"),
                        ("svc used", "prism.svc.used_bytes"),
                        ("svc capacity", "prism.svc.capacity_bytes")):
        vals = gauges.get(name)
        if vals and any(vals):
            occ.append((label, [v / 1e6 for v in vals]))
    charts.append(svg_chart("Occupancy (MB)", t_s, occ, "MB"))

    dev_series = []
    for dev, fields in sorted(doc.get("devices", {}).items()):
        dev_series.append((f"{dev} read", [
            b / dt / 1e6 if dt > 0 else 0.0
            for b, dt in zip(fields.get("read_bytes", []), doc["dt_s"])]))
        dev_series.append((f"{dev} write", [
            b / dt / 1e6 if dt > 0 else 0.0
            for b, dt in zip(fields.get("written_bytes", []),
                             doc["dt_s"])]))
    charts.append(svg_chart("Device throughput (MB/s)", t_s,
                            [s for s in dev_series if any(s[1])]))
    charts.append(svg_chart(
        "Device utilization", t_s,
        [(dev, fields.get("util", []))
         for dev, fields in sorted(doc.get("devices", {}).items())
         if any(fields.get("util", []))]))

    bg = [(label, rates(doc, n)) for label, n in
          (("pwb reclaimed values", "prism.pwb.reclaimed_values"),
           ("gc passes", "prism.vs.gc_passes"),
           ("bg tasks", "prism.bg.tasks"))]
    gc_bytes = rates(doc, "prism.vs.gc_moved_bytes")
    if gc_bytes:
        bg.append(("gc moved MB", [r / 1e6 for r in gc_bytes]))
    charts.append(svg_chart(
        "Background pipeline (per second)", t_s,
        [(lab, vals) for lab, vals in bg if vals]))

    charts.append(svg_chart(
        "SSD bytes (MB/s)", t_s,
        [(label, [r / 1e6 for r in rates(doc, n)])
         for label, n in (("read", "sim.ssd.bytes_read"),
                          ("written", "sim.ssd.bytes_written"))
         if rates(doc, n)]))

    totals = sorted(
        ((name, sum(deltas))
         for name, deltas in doc.get("counters", {}).items()
         if sum(deltas) > 0),
        key=lambda kv: -kv[1])[:30]
    total_rows = "".join(
        f"<tr><td><code>{esc(n)}</code></td>"
        f"<td style='text-align:right'>{fmt_si(t)}</td></tr>"
        for n, t in totals)

    duration = t_s[-1] - t_s[0] + (doc["dt_s"][0] if doc["dt_s"] else 0)
    html = f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>prism telemetry report</title>
<style>
 body {{ font-family: sans-serif; margin: 24px; max-width: 800px; }}
 .chart {{ margin-bottom: 28px; }}
 table {{ border-collapse: collapse; font-size: 13px; }}
 td, th {{ border: 1px solid #ccc; padding: 3px 8px; }}
</style></head><body>
<h1>prism telemetry report</h1>
<p>{esc(args[0])} — {doc.get('samples', len(t_s))} windows at
{doc.get('interval_ms', '?')} ms, {duration:.1f}s covered.
Schema {esc(doc.get('schema'))}.</p>
{''.join(f'<div class="chart">{c}</div>' for c in charts if c)}
<h2>Busiest counters (total over the run)</h2>
<table><tr><th>counter</th><th>total</th></tr>{total_rows}</table>
</body></html>
"""
    with open(out_path, "w", encoding="utf-8") as f:
        f.write(html)
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
