#!/usr/bin/env python3
"""Validate Prometheus text exposition (format 0.0.4) from stdin or a file.

Stdlib-only gate for the CI `obs` job: curl the live /metrics endpoint
and pipe it here. Checks the invariants prism::obs::renderPrometheus()
promises, the ones a real Prometheus scraper would choke on if broken:

  - every non-comment line is `name{labels} value` with a valid metric
    name, parseable labels and a float value;
  - `# TYPE` appears at most once per family, before any of its
    samples, and every sample belongs to a typed family;
  - counter samples (except histogram series) end in `_total`;
  - histogram families expose `_bucket{le=...}` series with cumulative
    (non-decreasing) counts per label set, a final `le="+Inf"` equal to
    `_count`, plus `_sum` and `_count`;
  - no duplicate sample (same name + label set).

Usage:
    curl -s localhost:PORT/metrics | scripts/check_prom.py
    scripts/check_prom.py metrics.txt
Exit 0 and a one-line summary on success; exit 1 with every violation
on stderr otherwise.
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)(?:\s+\d+)?$")


def base_family(name, types):
    """Map a sample name to its `# TYPE` family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return name


def main():
    data = (
        open(sys.argv[1], encoding="utf-8").read()
        if len(sys.argv) > 1
        else sys.stdin.read()
    )
    errors = []
    types = {}      # family -> counter|gauge|histogram
    seen = set()    # (name, labels) duplicates
    samples = []    # (lineno, name, label_dict, value)

    for lineno, line in enumerate(data.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) < 4:
                    errors.append(f"line {lineno}: malformed TYPE")
                    continue
                fam, kind = parts[2], parts[3].strip()
                if fam in types:
                    errors.append(
                        f"line {lineno}: duplicate TYPE for {fam}")
                if kind not in ("counter", "gauge", "histogram",
                                "summary", "untyped"):
                    errors.append(
                        f"line {lineno}: unknown type {kind!r}")
                types[fam] = kind
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name, labels_raw, value = m.group(1), m.group(2), m.group(3)
        if not NAME_RE.match(name):
            errors.append(f"line {lineno}: bad metric name {name!r}")
        labels = {}
        if labels_raw:
            body = labels_raw[1:-1]
            matched = "".join(
                f'{k}="{v}",' for k, v in LABEL_RE.findall(body))
            if body and body.rstrip(",") != matched.rstrip(","):
                errors.append(
                    f"line {lineno}: bad label syntax {labels_raw!r}")
            labels = dict(LABEL_RE.findall(body))
        try:
            val = float(value.replace("+Inf", "inf").replace(
                "-Inf", "-inf").replace("NaN", "nan"))
        except ValueError:
            errors.append(f"line {lineno}: bad value {value!r}")
            continue
        key = (name, tuple(sorted(labels.items())))
        if key in seen:
            errors.append(
                f"line {lineno}: duplicate sample {name}{labels}")
        seen.add(key)
        fam = base_family(name, types)
        if fam not in types:
            errors.append(f"line {lineno}: sample {name} has no TYPE")
        samples.append((lineno, name, labels, val))

    # Histogram structure: cumulative buckets, +Inf == _count.
    for fam, kind in types.items():
        if kind != "histogram":
            continue
        by_series = {}   # non-le labels -> [(le, value)]
        counts = {}      # non-le labels -> _count value
        for _, name, labels, val in samples:
            rest = tuple(sorted(
                (k, v) for k, v in labels.items() if k != "le"))
            if name == fam + "_bucket":
                if "le" not in labels:
                    errors.append(f"{fam}_bucket sample missing le")
                    continue
                by_series.setdefault(rest, []).append(
                    (labels["le"], val))
            elif name == fam + "_count":
                counts[rest] = val
        if not by_series:
            errors.append(f"histogram {fam} has no _bucket series")
        for rest, buckets in by_series.items():
            def le_key(le):
                return float("inf") if le == "+Inf" else float(le)
            ordered = sorted(buckets, key=lambda b: le_key(b[0]))
            prev = -1.0
            for le, val in ordered:
                if val < prev:
                    errors.append(
                        f"histogram {fam}{dict(rest)}: bucket "
                        f"le={le} not cumulative ({val} < {prev})")
                prev = val
            if not ordered or ordered[-1][0] != "+Inf":
                errors.append(
                    f"histogram {fam}{dict(rest)}: missing le=+Inf")
            elif rest in counts and ordered[-1][1] != counts[rest]:
                errors.append(
                    f"histogram {fam}{dict(rest)}: +Inf bucket "
                    f"{ordered[-1][1]} != _count {counts[rest]}")
            if rest not in counts:
                errors.append(
                    f"histogram {fam}{dict(rest)}: missing _count")

    # Counter naming: _total suffix (histogram series are exempt).
    for _, name, labels, _ in samples:
        fam = base_family(name, types)
        if types.get(fam) == "counter" and not name.endswith("_total"):
            errors.append(f"counter sample {name} lacks _total suffix")

    if errors:
        for e in errors:
            print(f"check_prom: {e}", file=sys.stderr)
        print(f"check_prom: FAIL ({len(errors)} violations, "
              f"{len(samples)} samples)", file=sys.stderr)
        return 1
    hists = sum(1 for k in types.values() if k == "histogram")
    print(f"check_prom: OK ({len(samples)} samples, "
          f"{len(types)} families, {hists} histograms)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
